"""Integration tests for the event-level training job (DES)."""

import pytest

from repro.cluster import Cluster
from repro.cluster.slurm import SlurmController
from repro.dl import Dataset, ElasticConfig, TrainingConfig, TrainingJob
from repro.failures import FailureInjector

DS = Dataset(name="toy", n_samples=256, sample_bytes=2.0e6)


def small_config(**over):
    base = dict(
        epochs=3,
        batch_size=8,
        ttl=0.5,
        timeout_threshold=2,
        elastic=ElasticConfig(detect_time=1.0, restart_overhead=2.0, restart_per_log2_node=0.0),
    )
    base.update(over)
    return TrainingConfig(**base)


def run_job(policy, n_nodes=8, n_failures=0, seed=7, config=None, **job_kw):
    cluster = Cluster.frontier(n_nodes=n_nodes, seed=seed)
    job = TrainingJob(cluster, DS, policy, config or small_config(), **job_kw)
    if n_failures:
        injector = FailureInjector(SlurmController(cluster))
        injector.inject_after_first_epoch(job, n_failures=n_failures)
    return job.run()


class TestNoFailureRuns:
    @pytest.mark.parametrize("policy", ["NoFT", "FT w/ PFS", "FT w/ NVMe"])
    def test_completes_all_epochs(self, policy):
        res = run_job(policy)
        assert res.completed
        assert sorted(res.epoch_times) == [0, 1, 2]
        assert res.restarts == 0 and res.failures == 0
        assert res.n_nodes_end == res.n_nodes_start == 8

    def test_first_epoch_cold_is_slowest(self):
        res = run_job("FT w/ NVMe")
        assert res.epoch_times[0] > res.epoch_times[1]
        assert res.epoch_times[1] == pytest.approx(res.epoch_times[2], rel=0.05)

    def test_noft_is_fastest_without_failures(self):
        # Fig 5a: the FT bookkeeping overhead makes NoFT win slightly.
        # NoFT and FT w/ PFS share the StaticHash placement, so there the
        # ordering is strict; FT w/ NVMe uses ring placement whose different
        # local/remote mix adds noise — the paper itself calls the Fig 5a
        # differences "within acceptable error margins", so allow 1%.
        t_noft = run_job("NoFT").total_time
        t_pfs = run_job("FT w/ PFS").total_time
        t_nvme = run_job("FT w/ NVMe").total_time
        assert t_noft < t_pfs
        assert t_noft < t_nvme * 1.01

    def test_preload_skips_cold_epoch(self):
        res = run_job("FT w/ NVMe", config=small_config(preload=True))
        assert res.epoch_times[0] == pytest.approx(res.epoch_times[1], rel=0.05)

    def test_total_time_is_sum_of_epochs_plus_overheads(self):
        res = run_job("FT w/ NVMe")
        assert res.total_time == pytest.approx(sum(res.epoch_times.values()), rel=0.01)

    def test_deterministic_given_seed(self):
        a = run_job("FT w/ NVMe", seed=9).total_time
        b = run_job("FT w/ NVMe", seed=9).total_time
        assert a == b


class TestFailureRuns:
    def test_noft_aborts_on_failure(self):
        res = run_job("NoFT", n_failures=1)
        assert not res.completed
        assert "NoFT" in res.abort_reason
        assert res.failures == 1

    @pytest.mark.parametrize("policy", ["FT w/ PFS", "FT w/ NVMe"])
    def test_ft_policies_survive_failures(self, policy):
        res = run_job(policy, n_failures=2)
        assert res.completed
        assert res.failures >= 1
        assert res.restarts >= 1
        assert res.n_nodes_end < res.n_nodes_start

    def test_failure_costs_time(self):
        base = run_job("FT w/ NVMe").total_time
        failed = run_job("FT w/ NVMe", n_failures=2).total_time
        assert failed > base

    def test_victim_epoch_flagged(self):
        res = run_job("FT w/ NVMe", n_failures=1)
        assert res.timeline.victim_epochs()

    def test_metrics_capture_recache(self):
        res = run_job("FT w/ NVMe", n_failures=1)
        # Lost files fetched once more from the PFS by their new owners:
        # recache count exceeds the initial full population.
        assert res.metrics.get("server.recache_files") > DS.n_samples

    def test_pfs_redirect_reads_pfs_every_epoch(self):
        res = run_job("FT w/ PFS", n_failures=1)
        assert res.metrics.get("client.pfs_direct_files") > 0

    def test_elastic_restart_cost_charged(self):
        res = run_job("FT w/ NVMe", n_failures=1)
        attempts = [rec for rec in res.timeline.epochs]
        assert sum(rec.restarts for rec in attempts) == res.restarts

    def test_step_recovery_cheaper_than_epoch_recovery(self):
        t_step = run_job("FT w/ NVMe", n_failures=2, config=small_config(recovery="step")).total_time
        t_epoch = run_job("FT w/ NVMe", n_failures=2, config=small_config(recovery="epoch")).total_time
        assert t_step < t_epoch

    def test_step_recovery_consumes_each_sample_once_per_epoch(self):
        # Under step recovery the committed prefix is not re-read: total
        # files served per epoch equals the dataset exactly (cold epoch
        # aside), so the whole run serves ~epochs × n_samples files.
        res = run_job("FT w/ NVMe", n_failures=1, config=small_config(recovery="step"))
        assert res.completed
        served = res.metrics.get("client.files_read")
        expected = small_config().epochs * DS.n_samples
        # Allow the partial step in flight at the failure plus detection
        # retries to add a little.
        assert expected <= served <= expected * 1.1

    def test_epoch_rollback_reruns_epoch(self):
        # "epoch" recovery: the victim epoch appears in multiple attempts.
        res = run_job("FT w/ NVMe", n_failures=1, config=small_config(recovery="epoch"))
        assert res.completed
        victim = res.timeline.victim_epochs()[0]
        attempts = [rec for rec in res.timeline.epochs if rec.epoch == victim]
        assert len(attempts) >= 2


class TestJobConstruction:
    def test_epoch_end_event_fires(self):
        cluster = Cluster.frontier(n_nodes=4, seed=1)
        job = TrainingJob(cluster, DS, "FT w/ NVMe", small_config())
        evt = job.epoch_end_event(0)
        job.start()
        cluster.env.run()
        assert evt.triggered

    def test_double_start_rejected(self):
        cluster = Cluster.frontier(n_nodes=4, seed=1)
        job = TrainingJob(cluster, DS, "FT w/ NVMe", small_config())
        job.start()
        with pytest.raises(RuntimeError):
            job.start()

    def test_per_client_policies_mode(self):
        res = run_job("FT w/ NVMe", shared_policy=False)
        assert res.completed

    def test_invalid_recovery_mode(self):
        with pytest.raises(ValueError):
            TrainingConfig(recovery="bogus")
