"""Tests for Dataset, CosmoFlow preset, and the distributed sampler."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dl import (
    COSMOFLOW_SAMPLE_BYTES,
    COSMOFLOW_TRAIN_SAMPLES,
    Dataset,
    DistributedSampler,
    cosmoflow_dataset,
)


class TestDataset:
    def test_uniform_sizes(self):
        ds = Dataset(name="d", n_samples=10, sample_bytes=100.0)
        assert ds.file_size(3) == 100.0
        assert ds.total_bytes == 1000.0
        assert len(ds) == 10

    def test_per_sample_sizes(self):
        sizes = np.array([1.0, 2.0, 3.0])
        ds = Dataset(name="d", n_samples=3, sample_bytes=sizes)
        assert ds.file_size(2) == 3.0
        assert ds.total_bytes == 6.0
        np.testing.assert_array_equal(ds.sizes_array(), sizes)

    def test_validation(self):
        with pytest.raises(ValueError):
            Dataset(name="d", n_samples=0)
        with pytest.raises(ValueError):
            Dataset(name="d", n_samples=2, sample_bytes=np.array([1.0]))
        with pytest.raises(ValueError):
            Dataset(name="d", n_samples=1, sample_bytes=-1.0)
        with pytest.raises(IndexError):
            Dataset(name="d", n_samples=2).file_size(2)

    def test_catalog_and_paths(self):
        ds = Dataset(name="cosmo", n_samples=3, sample_bytes=5.0)
        cat = ds.catalog()
        assert len(cat) == 3
        path = ds.path_of(1)
        assert "cosmo" in path and cat[path] == (1, 5.0)

    def test_files_helper(self):
        ds = Dataset(name="d", n_samples=5, sample_bytes=7.0)
        assert ds.files([4, 0]) == [(4, 7.0), (0, 7.0)]

    def test_iter_files(self):
        ds = Dataset(name="d", n_samples=3, sample_bytes=1.0)
        assert list(ds.iter_files()) == [(0, 1.0), (1, 1.0), (2, 1.0)]


class TestCosmoflowPreset:
    def test_full_scale_constants(self):
        ds = cosmoflow_dataset(scale=1.0)
        assert ds.n_samples == COSMOFLOW_TRAIN_SAMPLES == 524_288
        assert ds.file_size(0) == pytest.approx(COSMOFLOW_SAMPLE_BYTES)
        assert ds.total_bytes == pytest.approx(1.3e12 * 524288 / (524288 + 65536), rel=0.01)

    def test_scaled_keeps_sample_size(self):
        ds = cosmoflow_dataset(scale=1 / 16)
        assert ds.n_samples == 32_768
        assert ds.file_size(0) == pytest.approx(COSMOFLOW_SAMPLE_BYTES)

    def test_validation_split(self):
        assert cosmoflow_dataset(split="valid").n_samples == 65_536
        with pytest.raises(ValueError):
            cosmoflow_dataset(split="test")
        with pytest.raises(ValueError):
            cosmoflow_dataset(scale=0)
        with pytest.raises(ValueError):
            cosmoflow_dataset(scale=1.5)


class TestSampler:
    def _sampler(self, n=64, batch=4, seed=0):
        return DistributedSampler(Dataset(name="d", n_samples=n, sample_bytes=1.0), batch, seed=seed)

    def test_permutation_deterministic(self):
        a = self._sampler().epoch_permutation(2)
        b = self._sampler().epoch_permutation(2)
        np.testing.assert_array_equal(a, b)

    def test_permutation_differs_per_epoch(self):
        s = self._sampler()
        p1 = s.epoch_permutation(1).copy()
        assert not np.array_equal(p1, s.epoch_permutation(2))

    def test_no_shuffle_identity(self):
        s = DistributedSampler(Dataset(name="d", n_samples=10, sample_bytes=1.0), 2, shuffle=False)
        np.testing.assert_array_equal(s.epoch_permutation(3), np.arange(10))

    def test_shards_partition_dataset(self):
        s = self._sampler(n=100)
        shards = [s.rank_samples(0, r, 7) for r in range(7)]
        union = np.concatenate(shards)
        assert len(union) == 100
        assert set(union.tolist()) == set(range(100))

    def test_shards_balanced(self):
        s = self._sampler(n=100)
        lens = [len(s.rank_samples(0, r, 7)) for r in range(7)]
        assert max(lens) - min(lens) <= 1

    def test_steps_uniform_across_ranks(self):
        s = self._sampler(n=100, batch=8)
        steps = s.steps_per_epoch(7)
        for r in range(7):
            batches = list(s.iter_batches(0, r, 7))
            assert len(batches) == steps
            assert sum(len(b) for b in batches) == len(s.rank_samples(0, r, 7))

    def test_batch_bounds(self):
        s = self._sampler(n=20, batch=8)
        assert len(s.batch(0, 0, 0, 2)) == 8
        assert len(s.batch(0, 1, 0, 2)) == 2  # tail
        assert len(s.batch(0, 5, 0, 2)) == 0  # past the end

    def test_validation(self):
        s = self._sampler()
        with pytest.raises(ValueError):
            s.rank_samples(0, 5, 3)
        with pytest.raises(ValueError):
            s.rank_samples(0, 0, 0)
        with pytest.raises(ValueError):
            DistributedSampler(Dataset(name="d", n_samples=4, sample_bytes=1.0), 0)

    def test_remaining_after_partition(self):
        s = self._sampler(n=100, batch=4)
        consumed_steps = 3
        remaining = s.remaining_after(0, consumed_steps, 5)
        # Each of 5 ranks consumed 12 samples → 40 consumed, 60 remain.
        assert len(remaining) == 100 - 5 * 12
        perm = s.epoch_permutation(0)
        consumed = set()
        for r in range(5):
            consumed.update(perm[r::5][: consumed_steps * 4].tolist())
        assert set(remaining.tolist()) == set(range(100)) - consumed

    def test_remaining_after_zero_steps_is_everything(self):
        s = self._sampler(n=50)
        assert len(s.remaining_after(1, 0, 4)) == 50

    def test_shard_matrix_shape_and_content(self):
        samples = np.arange(10)
        m = DistributedSampler.shard_matrix(samples, n_ranks=3, batch_size=2)
        assert m.shape == (3, 4)  # ceil(ceil(10/3)/2)=2 steps × batch 2
        valid = m[m >= 0]
        assert sorted(valid.tolist()) == list(range(10))

    def test_shard_matrix_empty(self):
        m = DistributedSampler.shard_matrix(np.array([], dtype=np.int64), 2, 4)
        assert (m == -1).all()

    @settings(max_examples=20, deadline=None)
    @given(
        n=st.integers(min_value=1, max_value=200),
        ranks=st.integers(min_value=1, max_value=16),
        batch=st.integers(min_value=1, max_value=16),
    )
    def test_shard_matrix_partition_property(self, n, ranks, batch):
        samples = np.random.default_rng(0).permutation(n)
        m = DistributedSampler.shard_matrix(samples, ranks, batch)
        valid = m[m >= 0]
        assert sorted(valid.tolist()) == sorted(samples.tolist())
        assert m.shape[1] % batch == 0
