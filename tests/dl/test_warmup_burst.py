"""Tests for cache pre-staging (warmup) and correlated failure bursts."""

from dataclasses import replace

import pytest

from repro.cluster import Cluster
from repro.cluster.config import frontier
from repro.cluster.slurm import SlurmController
from repro.dl import Dataset, ElasticConfig, TrainingConfig, TrainingJob
from repro.dl.fastsim import FluidTrainingModel
from repro.failures import FailureInjector

DS = Dataset(name="t", n_samples=256, sample_bytes=2.0e6)


def quiet_cc(n=8):
    cc = frontier(n)
    return replace(cc, pfs=replace(cc.pfs, service_noise_sigma=0.0))


def cfg(**over):
    base = dict(
        epochs=3,
        batch_size=8,
        ttl=0.4,
        timeout_threshold=2,
        elastic=ElasticConfig(detect_time=0.5, restart_overhead=1.0, restart_per_log2_node=0.0),
    )
    base.update(over)
    return TrainingConfig(**base)


class TestWarmup:
    def test_des_first_epoch_runs_warm(self):
        plain = TrainingJob(Cluster(quiet_cc(), seed=1), DS, "FT w/ NVMe", cfg()).run()
        warm = TrainingJob(Cluster(quiet_cc(), seed=1), DS, "FT w/ NVMe", cfg(warmup=True)).run()
        assert warm.epoch_times[0] < plain.epoch_times[0]
        assert warm.epoch_times[0] == pytest.approx(warm.epoch_times[1], rel=0.05)

    def test_des_warmup_populates_all_servers(self):
        cluster = Cluster(quiet_cc(), seed=1)
        job = TrainingJob(cluster, DS, "FT w/ NVMe", cfg(warmup=True))
        job.run()
        cached = sum(len(s.store) for s in job.servers)
        assert cached == DS.n_samples
        assert job.metrics.get("warmup.bytes") == pytest.approx(DS.total_bytes)

    def test_fluid_warmup_matches_semantics(self):
        res = FluidTrainingModel(quiet_cc(), DS, "FT w/ NVMe", cfg(warmup=True), 0, seed=1).run()
        assert res.warmup_time > 0
        # Epoch 0 is warm: same cost as epoch 1.
        assert res.epoch_times[0] == pytest.approx(res.epoch_times[1], rel=0.05)
        # The PFS still transferred the whole dataset exactly once.
        assert res.pfs_bytes == pytest.approx(DS.total_bytes)

    def test_warmup_with_failures_still_completes(self):
        cluster = Cluster(quiet_cc(), seed=2)
        job = TrainingJob(cluster, DS, "FT w/ NVMe", cfg(warmup=True))
        FailureInjector(SlurmController(cluster)).inject_after_first_epoch(job, 1)
        res = job.run()
        assert res.completed and res.failures == 1


class TestBurstInjection:
    def test_burst_kills_requested_count(self):
        cluster = Cluster(quiet_cc(), seed=3)
        job = TrainingJob(cluster, DS, "FT w/ NVMe", cfg())
        inj = FailureInjector(SlurmController(cluster))
        inj.inject_burst(job, size=3, epoch=1)
        res = job.run()
        assert res.completed
        assert len(inj.injected) == 3
        times = [t for t, _ in inj.injected]
        assert max(times) - min(times) < 1e-9  # simultaneous
        assert res.n_nodes_end == res.n_nodes_start - 3

    def test_burst_all_failures_counted(self):
        cluster = Cluster(quiet_cc(), seed=3)
        job = TrainingJob(cluster, DS, "FT w/ NVMe", cfg())
        FailureInjector(SlurmController(cluster)).inject_burst(job, size=2, epoch=1)
        res = job.run()
        assert res.failures == 2

    def test_burst_validation(self):
        cluster = Cluster(quiet_cc(), seed=3)
        job = TrainingJob(cluster, DS, "FT w/ NVMe", cfg())
        inj = FailureInjector(SlurmController(cluster))
        with pytest.raises(ValueError):
            inj.inject_burst(job, size=0)
        with pytest.raises(ValueError):
            inj.inject_burst(job, size=1, epoch=0)
        with pytest.raises(ValueError):
            inj.inject_burst(job, size=1, fraction=1.0)

    def test_burst_never_kills_last_node(self):
        cluster = Cluster(quiet_cc(2), seed=3)
        job = TrainingJob(cluster, DS, "FT w/ NVMe", cfg())
        FailureInjector(SlurmController(cluster)).inject_burst(job, size=5, epoch=1)
        res = job.run()
        assert res.completed
        assert len(cluster.alive_nodes) >= 1
