"""Tests for the per-epoch validation pass (paper's 65,536-sample split)."""

from dataclasses import replace

import pytest

from repro.cluster import Cluster
from repro.cluster.config import frontier
from repro.dl import Dataset, TrainingConfig, TrainingJob
from repro.dl.dataset import combine_datasets
from repro.dl.fastsim import FluidTrainingModel

TRAIN = Dataset(name="tr", n_samples=192, sample_bytes=2.0e6)
VAL = Dataset(name="va", n_samples=64, sample_bytes=2.0e6)


def quiet_cc(n=8):
    cc = frontier(n)
    return replace(cc, pfs=replace(cc.pfs, service_noise_sigma=0.0))


class TestCombineDatasets:
    def test_id_space_layout(self):
        combined = combine_datasets(TRAIN, VAL)
        assert combined.n_samples == 256
        assert combined.file_size(0) == TRAIN.file_size(0)
        assert combined.file_size(192) == VAL.file_size(0)
        assert combined.total_bytes == TRAIN.total_bytes + VAL.total_bytes

    def test_heterogeneous_sizes_preserved(self):
        import numpy as np

        t = Dataset(name="t", n_samples=2, sample_bytes=np.array([10.0, 20.0]))
        v = Dataset(name="v", n_samples=1, sample_bytes=np.array([99.0]))
        c = combine_datasets(t, v)
        assert [c.file_size(i) for i in range(3)] == [10.0, 20.0, 99.0]


class TestDesValidation:
    def test_validation_adds_time_and_caches_split(self):
        cfg = TrainingConfig(epochs=2, batch_size=8)
        plain = TrainingJob(Cluster(quiet_cc(), seed=1), TRAIN, "FT w/ NVMe", cfg).run()
        job = TrainingJob(
            Cluster(quiet_cc(), seed=1), TRAIN, "FT w/ NVMe", cfg, val_dataset=VAL
        )
        with_val = job.run()
        assert with_val.total_time > plain.total_time
        assert with_val.metrics.get("job.validation_passes") == 2
        cached = sum(len(s.store) for s in job.servers)
        assert cached == TRAIN.n_samples + VAL.n_samples

    def test_training_shuffle_not_affected_by_val(self):
        cfg = TrainingConfig(epochs=1, batch_size=8)
        a = TrainingJob(Cluster(quiet_cc(), seed=1), TRAIN, "FT w/ NVMe", cfg)
        b = TrainingJob(
            Cluster(quiet_cc(), seed=1), TRAIN, "FT w/ NVMe", cfg, val_dataset=VAL
        )
        import numpy as np

        np.testing.assert_array_equal(
            a.sampler.epoch_permutation(0), b.sampler.epoch_permutation(0)
        )
        # And the training permutation never touches validation ids.
        assert b.sampler.epoch_permutation(0).max() < TRAIN.n_samples

    def test_survives_failure_with_validation(self):
        from repro.cluster.slurm import SlurmController
        from repro.failures import FailureInjector

        cluster = Cluster(quiet_cc(), seed=3)
        cfg = TrainingConfig(epochs=3, batch_size=8, ttl=0.4, timeout_threshold=2)
        job = TrainingJob(cluster, TRAIN, "FT w/ NVMe", cfg, val_dataset=VAL)
        FailureInjector(SlurmController(cluster)).inject_after_first_epoch(job, 1)
        res = job.run()
        assert res.completed and res.failures == 1
        assert res.metrics.get("job.validation_passes") == 3


class TestFluidValidation:
    def test_validation_adds_time(self):
        cfg = TrainingConfig(epochs=2, batch_size=8)
        plain = FluidTrainingModel(quiet_cc(), TRAIN, "FT w/ NVMe", cfg, 0, seed=1).run()
        with_val = FluidTrainingModel(
            quiet_cc(), TRAIN, "FT w/ NVMe", cfg, 0, seed=1, val_dataset=VAL
        ).run()
        assert with_val.total_time > plain.total_time
        assert with_val.pfs_files == TRAIN.n_samples + VAL.n_samples

    def test_des_fluid_agree_with_validation(self):
        cc = quiet_cc()
        cfg = TrainingConfig(epochs=2, batch_size=8)
        des = TrainingJob(Cluster(cc, seed=5), TRAIN, "FT w/ NVMe", cfg, val_dataset=VAL).run()
        fluid = FluidTrainingModel(
            cc, TRAIN, "FT w/ NVMe", cfg, 0, seed=5, val_dataset=VAL
        ).run()
        assert fluid.total_time == pytest.approx(des.total_time, rel=0.15)

    def test_failure_with_validation_completes(self):
        res = FluidTrainingModel(
            quiet_cc(), TRAIN, "FT w/ NVMe", TrainingConfig(epochs=3, batch_size=8), 1,
            seed=2, val_dataset=VAL
        ).run()
        assert res.completed and res.failures == 1
