"""Tests for the RPC fabric and the per-server cache store."""

import pytest

from repro.cluster import Cluster, NVMeConfig
from repro.cluster.nvme import NVMeDevice, NVMeFullError
from repro.hvac import HvacServer, ReadRequest, RpcFabric
from repro.hvac.cache_store import CacheStore
from repro.sim import Environment
from tests.conftest import run_proc


@pytest.fixture
def cluster():
    return Cluster.frontier(n_nodes=3, seed=2)


class TestRpcFabric:
    def test_call_round_trip(self, cluster):
        fabric = RpcFabric(cluster)
        HvacServer(cluster, 1, fabric).start()

        def proc():
            result = yield from fabric.call(0, 1, ReadRequest(files=((7, 1024.0),)), ttl=5.0)
            return result

        result = run_proc(cluster.env, proc())
        assert result.ok and not result.timed_out
        assert result.value.served_bytes == 1024.0

    def test_timeout_on_dead_node(self, cluster):
        fabric = RpcFabric(cluster)
        HvacServer(cluster, 1, fabric).start()
        cluster.fail_node(1)

        def proc():
            result = yield from fabric.call(0, 1, ReadRequest(files=((7, 10.0),)), ttl=0.5)
            return (result, cluster.env.now)

        result, t = run_proc(cluster.env, proc())
        assert result.timed_out and not result.ok
        assert t >= 0.5
        assert fabric.timeouts == 1

    def test_timeout_when_no_server_registered(self, cluster):
        fabric = RpcFabric(cluster)

        def proc():
            result = yield from fabric.call(0, 2, ReadRequest(files=()), ttl=0.2)
            return result

        assert run_proc(cluster.env, proc()).timed_out

    def test_invalid_ttl(self, cluster):
        fabric = RpcFabric(cluster)
        with pytest.raises(ValueError):
            list(fabric.call(0, 1, None, ttl=0))

    def test_call_counter(self, cluster):
        fabric = RpcFabric(cluster)
        HvacServer(cluster, 0, fabric).start()

        def proc():
            yield from fabric.call(1, 0, ReadRequest(files=((1, 8.0),)), ttl=5.0)
            yield from fabric.call(1, 0, ReadRequest(files=((2, 8.0),)), ttl=5.0)

        run_proc(cluster.env, proc())
        assert fabric.calls == 2


class TestCacheStore:
    def _store(self, capacity=1000.0):
        env = Environment()
        nvme = NVMeDevice(env, NVMeConfig(capacity=capacity, read_bw=1.0, write_bw=1.0))
        return CacheStore(nvme)

    def test_put_contains_touch(self):
        store = self._store()
        store.put(1, 100.0)
        assert 1 in store and len(store) == 1
        assert store.touch(1) == 100.0
        assert store.cached_bytes == 100.0

    def test_put_idempotent(self):
        store = self._store()
        store.put(1, 100.0)
        store.put(1, 100.0)
        assert len(store) == 1 and store.cached_bytes == 100.0
        assert store.insertions == 1

    def test_lru_eviction_order(self):
        store = self._store(capacity=300.0)
        store.put(1, 100.0)
        store.put(2, 100.0)
        store.put(3, 100.0)
        store.touch(1)  # refresh 1 → LRU order is 2, 3, 1
        store.put(4, 100.0)
        assert 2 not in store and 1 in store and 3 in store and 4 in store
        assert store.evictions == 1

    def test_oversized_entry_raises(self):
        store = self._store(capacity=50.0)
        with pytest.raises(NVMeFullError):
            store.put(1, 100.0)

    def test_drop_releases_capacity(self):
        store = self._store()
        store.put(1, 400.0)
        store.drop(1)
        assert 1 not in store and store.cached_bytes == 0.0
        store.drop(99)  # unknown: no-op

    def test_clear(self):
        store = self._store()
        for i in range(5):
            store.put(i, 50.0)
        store.clear()
        assert len(store) == 0 and store.cached_bytes == 0.0

    def test_file_ids_listing(self):
        store = self._store()
        store.put(3, 10.0)
        store.put(1, 10.0)
        assert set(store.file_ids) == {1, 3}
