"""Model-based test: CacheStore against a reference LRU implementation."""

from collections import OrderedDict

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import NVMeConfig
from repro.cluster.nvme import NVMeDevice
from repro.hvac.cache_store import CacheStore
from repro.sim import Environment


class ReferenceLRU:
    """Textbook LRU with byte capacity, for differential testing."""

    def __init__(self, capacity: float):
        self.capacity = capacity
        self.entries: "OrderedDict[int, float]" = OrderedDict()

    def used(self) -> float:
        return sum(self.entries.values())

    def touch(self, fid: int) -> None:
        self.entries.move_to_end(fid)

    def put(self, fid: int, nbytes: float) -> None:
        if fid in self.entries:
            self.entries.move_to_end(fid)
            return
        while self.used() + nbytes > self.capacity and self.entries:
            self.entries.popitem(last=False)
        if nbytes <= self.capacity:
            self.entries[fid] = nbytes

    def drop(self, fid: int) -> None:
        self.entries.pop(fid, None)


# Operations: (op, fid) with op in put/touch/drop/check
_ops = st.lists(
    st.tuples(
        st.sampled_from(["put", "touch", "drop", "contains"]),
        st.integers(min_value=0, max_value=12),
    ),
    max_size=80,
)


class TestCacheStoreMatchesReference:
    @settings(max_examples=60, deadline=None)
    @given(ops=_ops, capacity_units=st.integers(min_value=1, max_value=10))
    def test_differential(self, ops, capacity_units):
        entry = 100.0
        capacity = capacity_units * entry
        env = Environment()
        store = CacheStore(NVMeDevice(env, NVMeConfig(capacity=capacity, read_bw=1, write_bw=1)))
        ref = ReferenceLRU(capacity)
        for op, fid in ops:
            if op == "put":
                store.put(fid, entry)
                ref.put(fid, entry)
            elif op == "touch":
                if fid in ref.entries:
                    assert fid in store
                    store.touch(fid)
                    ref.touch(fid)
            elif op == "drop":
                store.drop(fid)
                ref.drop(fid)
            else:  # contains
                assert (fid in store) == (fid in ref.entries)
            # Invariants after every operation:
            assert set(store.file_ids) == set(ref.entries)
            assert store.cached_bytes == ref.used()
            assert store.cached_bytes <= capacity

    @settings(max_examples=30, deadline=None)
    @given(
        fids=st.lists(st.integers(min_value=0, max_value=50), min_size=1, max_size=60),
    )
    def test_eviction_order_is_lru(self, fids):
        # Capacity for exactly 3 entries: after any sequence of puts, the
        # survivors are the 3 most-recently-put distinct fids.
        env = Environment()
        store = CacheStore(NVMeDevice(env, NVMeConfig(capacity=300.0, read_bw=1, write_bw=1)))
        recency: list[int] = []
        for fid in fids:
            store.put(fid, 100.0)
            if fid in recency:
                recency.remove(fid)
            recency.append(fid)
        expected = recency[-3:]
        assert set(store.file_ids) == set(expected)
