"""Edge-case tests for the HVAC client's safety valves."""

from repro.cluster import Cluster
from repro.cluster.config import MiB
from repro.core import StaticHash, Target
from repro.core.fault_policy import FaultPolicy
from repro.hvac import HvacClient, HvacServer, RoutingLoopError, RpcFabric
from tests.conftest import run_proc


class _StubbornPolicy(FaultPolicy):
    """Pathological policy: keeps routing to a dead node forever."""

    name = "stubborn"

    def __init__(self, placement, dead_node):
        super().__init__(placement)
        self.dead_node = dead_node

    def target_for(self, key):
        return Target.to_node(self.dead_node)

    def on_node_failed(self, node):
        pass  # refuses to learn


class TestRoutingLoopSafetyValve:
    def test_non_converging_policy_raises_instead_of_hanging(self):
        cluster = Cluster.frontier(n_nodes=3, seed=1)
        fabric = RpcFabric(cluster)
        for i in range(3):
            HvacServer(cluster, i, fabric).start()
        cluster.fail_node(2)
        policy = _StubbornPolicy(StaticHash(nodes=range(3)), dead_node=2)
        client = HvacClient(cluster, 0, policy, fabric, ttl=0.05, timeout_threshold=2)

        def proc():
            try:
                yield from client.read_files([(0, 1 * MiB)])
            except RoutingLoopError as exc:
                return ("loop-detected", str(exc))

        result = run_proc(cluster.env, proc())
        assert result[0] == "loop-detected"
        assert "unserved" in result[1]

    def test_empty_batch_is_a_noop(self):
        cluster = Cluster.frontier(n_nodes=2, seed=1)
        fabric = RpcFabric(cluster)
        HvacServer(cluster, 0, fabric).start()
        HvacServer(cluster, 1, fabric).start()
        from repro.core import ElasticRecache, HashRing

        client = HvacClient(
            cluster, 0, ElasticRecache(HashRing(nodes=range(2))), fabric, ttl=0.5
        )

        def proc():
            t0 = cluster.env.now
            yield from client.read_files([])
            return cluster.env.now - t0

        assert run_proc(cluster.env, proc()) == 0.0
