"""Integration tests for the simulated HVAC server + client stack."""

import pytest

from repro.cluster import Cluster
from repro.cluster.config import MiB
from repro.core import (
    ElasticRecache,
    HashRing,
    MembershipView,
    NoFT,
    PFSRedirect,
    StaticHash,
    UnrecoverableNodeFailure,
)
from repro.hvac import HvacClient, HvacServer, PosixInterceptor, ReadRequest, RpcFabric
from tests.conftest import run_proc


def build_stack(n=4, policy_cls=ElasticRecache, placement=None, ttl=0.5, threshold=2, seed=1):
    cluster = Cluster.frontier(n_nodes=n, seed=seed)
    fabric = RpcFabric(cluster)
    servers = [HvacServer(cluster, i, fabric) for i in range(n)]
    for s in servers:
        s.start()
    placement = placement if placement is not None else HashRing(nodes=range(n), vnodes_per_node=50)
    policy = policy_cls(placement)
    membership = MembershipView(range(n))
    client = HvacClient(
        cluster, 0, policy, fabric, membership=membership, ttl=ttl, timeout_threshold=threshold
    )
    return cluster, fabric, servers, policy, membership, client


FILES = [(i, 2.0 * MiB) for i in range(16)]


class TestServer:
    def test_miss_then_hit(self):
        cluster, fabric, servers, policy, _, client = build_stack()

        def proc():
            yield from client.read_files(FILES[:4])
            t_cold = cluster.env.now
            yield from client.read_files(FILES[:4])
            return t_cold, cluster.env.now - t_cold

        t_cold, t_warm = run_proc(cluster.env, proc())
        assert t_warm < t_cold / 3
        total_misses = sum(s.metrics.get("server.miss_files") for s in servers)
        total_hits = sum(s.metrics.get("server.hit_files") for s in servers)
        assert total_misses == 4 and total_hits == 4

    def test_recache_populates_store(self):
        cluster, _, servers, policy, _, client = build_stack()

        def proc():
            yield from client.read_files(FILES)

        run_proc(cluster.env, proc())
        cached = sum(len(s.store) for s in servers)
        assert cached == len(FILES)
        assert cluster.pfs.stats.bytes_read == pytest.approx(sum(nb for _, nb in FILES))

    def test_no_duplicate_pfs_fetch_for_concurrent_misses(self):
        cluster, fabric, servers, policy, _, _ = build_stack()
        env = cluster.env
        owner = policy.target_for(0).node

        def requester():
            result = yield from fabric.call(1, owner, ReadRequest(files=((0, 1 * MiB),)), ttl=5.0)
            assert result.ok

        env.process(requester())
        env.process(requester())
        env.run()
        assert servers[owner].metrics.get("server.recache_files") == 1

    def test_preload_skips_pfs(self):
        cluster, _, servers, policy, _, client = build_stack()
        for i, s in enumerate(servers):
            files = [(fid, nb) for fid, nb in FILES if policy.target_for(fid).node == i]
            s.preload(files)

        def proc():
            yield from client.read_files(FILES)

        run_proc(cluster.env, proc())
        assert cluster.pfs.stats.reads == 0

    def test_dead_server_stops_serving(self):
        cluster, fabric, servers, policy, _, _ = build_stack()
        cluster.fail_node(2)

        def proc():
            result = yield from fabric.call(0, 2, ReadRequest(files=((1, 8.0),)), ttl=0.3)
            return result

        assert run_proc(cluster.env, proc()).timed_out


class TestClientFaultHandling:
    def test_elastic_recache_full_cycle(self):
        cluster, _, servers, policy, membership, client = build_stack()
        env = cluster.env

        def proc():
            yield from client.read_files(FILES)  # cold
            victim = policy.target_for(0).node
            cluster.fail_node(victim)
            yield from client.read_files(FILES)  # detect + reroute + recache
            yield from client.read_files(FILES)  # all warm again
            return victim

        victim = run_proc(env, proc())
        assert victim in policy.failed_nodes
        assert membership.failed_nodes == (victim,)
        assert victim not in policy.placement.nodes
        assert client.metrics.get("client.rpc_timeouts") >= 2
        assert client.metrics.get("client.failures_declared") == 1

    def test_pfs_redirect_full_cycle(self):
        cluster, _, servers, policy, membership, client = build_stack(
            policy_cls=PFSRedirect, placement=StaticHash(nodes=range(4))
        )
        env = cluster.env

        def proc():
            yield from client.read_files(FILES)
            victim = policy.target_for(0).node
            cluster.fail_node(victim)
            yield from client.read_files(FILES)
            before = client.metrics.get("client.pfs_direct_files")
            yield from client.read_files(FILES)
            after = client.metrics.get("client.pfs_direct_files")
            return victim, before, after

        victim, before, after = run_proc(env, proc())
        # Redirected keys hit the PFS on *every* subsequent read.
        assert before > 0 and after > before
        assert victim in policy.placement.nodes  # placement untouched

    def test_noft_aborts_job(self):
        cluster, _, _, policy, _, client = build_stack(
            policy_cls=NoFT, placement=StaticHash(nodes=range(4))
        )
        env = cluster.env

        def proc():
            yield from client.read_files(FILES)
            victim = policy.target_for(0).node
            cluster.fail_node(victim)
            try:
                yield from client.read_files(FILES)
            except UnrecoverableNodeFailure as exc:
                return ("aborted", exc.node)

        result = run_proc(env, proc())
        assert result[0] == "aborted"

    def test_detection_cost_is_ttl_times_threshold(self):
        cluster, _, _, policy, _, client = build_stack(ttl=0.5, threshold=3)
        env = cluster.env

        def proc():
            yield from client.read_files(FILES)
            victim = policy.target_for(0).node
            cluster.fail_node(victim)
            t0 = env.now
            yield from client.read_files([f for f in FILES if policy.target_for(f[0]).node == victim][:1])
            return env.now - t0

        elapsed = run_proc(env, proc())
        assert elapsed >= 1.5  # 3 timeouts × 0.5 s TTL

    def test_transient_timeout_does_not_declare(self):
        # threshold=2: a single timeout followed by recovery must not evict.
        cluster, fabric, servers, policy, membership, client = build_stack(ttl=0.01, threshold=50)
        env = cluster.env

        def proc():
            # TTL of 10 ms is below the cold PFS fetch time → timeouts, but
            # the reads eventually succeed on retry once cached.
            yield from client.read_files(FILES[:2])
            return client.metrics.get("client.failures_declared")

        declared = run_proc(env, proc())
        assert declared == 0
        assert policy.failed_nodes == frozenset()

    def test_local_vs_remote_metrics(self):
        cluster, _, _, policy, _, client = build_stack()
        env = cluster.env
        local = [(f, nb) for f, nb in FILES if policy.target_for(f).node == 0]
        remote = [(f, nb) for f, nb in FILES if policy.target_for(f).node != 0]

        def proc():
            yield from client.read_files(FILES)  # populate
            yield from client.read_files(FILES)  # warm, counted below

        run_proc(env, proc())
        if local:
            assert client.metrics.get("client.local_bytes") > 0
        assert client.metrics.get("client.remote_bytes") > 0


class TestPosixInterceptor:
    def _setup(self):
        cluster, _, servers, policy, _, client = build_stack()
        catalog = {f"/ds/f{i}": (i, 1.0 * MiB) for i in range(8)}
        return cluster, PosixInterceptor(client, catalog)

    def test_open_read_close(self):
        cluster, posix = self._setup()

        def proc():
            fh = posix.open("/ds/f3")
            n = yield from posix.read(fh)
            posix.close(fh)
            return n, fh.closed, posix.open_count

        n, closed, open_count = run_proc(cluster.env, proc())
        assert n == 1.0 * MiB and closed and open_count == 0

    def test_partial_reads_and_eof(self):
        cluster, posix = self._setup()

        def proc():
            fh = posix.open("/ds/f0")
            a = yield from posix.read(fh, 0.25 * MiB)
            b = yield from posix.read(fh)  # rest
            c = yield from posix.read(fh)  # EOF
            return a, b, c

        a, b, c = run_proc(cluster.env, proc())
        assert a == 0.25 * MiB and b == 0.75 * MiB and c == 0.0

    def test_missing_path(self):
        _, posix = self._setup()
        with pytest.raises(FileNotFoundError):
            posix.open("/ds/nope")

    def test_read_after_close_rejected(self):
        cluster, posix = self._setup()
        fh = posix.open("/ds/f1")
        posix.close(fh)
        with pytest.raises(ValueError):
            list(posix.read(fh))

    def test_fds_unique(self):
        _, posix = self._setup()
        fds = {posix.open(f"/ds/f{i}").fd for i in range(5)}
        assert len(fds) == 5
