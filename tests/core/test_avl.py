"""Tests for the AVL ordered map and the std::map-style tree ring."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import AVLMap, HashRing, TreeHashRing, bulk_hash64


class TestAVLMapBasics:
    def test_insert_get(self):
        m = AVLMap()
        m.insert(5, "five")
        m.insert(3, "three")
        assert m.get(5) == "five" and m.get(3) == "three"
        assert m.get(99) is None
        assert m.get(99, "dflt") == "dflt"

    def test_overwrite(self):
        m = AVLMap([(1, "a")])
        m.insert(1, "b")
        assert m.get(1) == "b" and len(m) == 1

    def test_len_and_bool(self):
        m = AVLMap()
        assert not m and len(m) == 0
        m.insert(1, None)
        assert m and len(m) == 1

    def test_contains(self):
        m = AVLMap([(1, "x"), (2, None)])
        assert 1 in m and 2 in m and 3 not in m

    def test_delete(self):
        m = AVLMap([(i, i) for i in range(10)])
        m.delete(5)
        assert 5 not in m and len(m) == 9
        m.check_invariants()

    def test_delete_missing_raises(self):
        with pytest.raises(KeyError):
            AVLMap([(1, 1)]).delete(2)

    def test_items_sorted(self):
        keys = [5, 1, 9, 3, 7, 2, 8]
        m = AVLMap([(k, str(k)) for k in keys])
        assert [k for k, _ in m.items()] == sorted(keys)

    def test_min_entry(self):
        assert AVLMap().min_entry() is None
        m = AVLMap([(5, "e"), (2, "b"), (9, "i")])
        assert m.min_entry() == (2, "b")


class TestAVLQueries:
    def setup_method(self):
        self.m = AVLMap([(k, f"v{k}") for k in (10, 20, 30, 40, 50)])

    def test_ceiling_exact(self):
        assert self.m.ceiling_entry(30) == (30, "v30")

    def test_ceiling_between(self):
        assert self.m.ceiling_entry(31) == (40, "v40")

    def test_ceiling_past_max(self):
        assert self.m.ceiling_entry(51) is None

    def test_floor_exact(self):
        assert self.m.floor_entry(30) == (30, "v30")

    def test_floor_between(self):
        assert self.m.floor_entry(29) == (20, "v20")

    def test_floor_below_min(self):
        assert self.m.floor_entry(9) is None


class TestAVLBalance:
    def test_sequential_insert_stays_logarithmic(self):
        m = AVLMap()
        for i in range(1000):
            m.insert(i, i)
        m.check_invariants()
        assert m.height() <= 1.45 * np.log2(1001) + 2

    def test_random_churn_invariants(self):
        rng = np.random.default_rng(0)
        m = AVLMap()
        present = set()
        for _ in range(3000):
            k = int(rng.integers(0, 500))
            if k in present and rng.random() < 0.5:
                m.delete(k)
                present.discard(k)
            else:
                m.insert(k, k)
                present.add(k)
        m.check_invariants()
        assert len(m) == len(present)
        assert [k for k, _ in m.items()] == sorted(present)

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.integers(min_value=-1000, max_value=1000), max_size=60))
    def test_matches_dict_reference(self, ops):
        m = AVLMap()
        ref: dict[int, int] = {}
        for k in ops:
            if k in ref and k % 3 == 0:
                m.delete(k)
                del ref[k]
            else:
                m.insert(k, k * 2)
                ref[k] = k * 2
        m.check_invariants()
        assert dict(m.items()) == ref
        if ref:
            lo = min(ref)
            assert m.ceiling_entry(lo) == (lo, ref[lo])


class TestTreeHashRing:
    def test_matches_array_ring(self):
        keys = bulk_hash64(np.arange(3000))
        tree = TreeHashRing(nodes=range(8), vnodes_per_node=40)
        array = HashRing(nodes=range(8), vnodes_per_node=40)
        for h in keys[:600]:
            assert tree.lookup_hash(int(h)) == array.lookup_hash(int(h))

    def test_matches_after_removal(self):
        keys = bulk_hash64(np.arange(1000))
        tree = TreeHashRing(nodes=range(8), vnodes_per_node=40)
        array = HashRing(nodes=range(8), vnodes_per_node=40)
        tree.remove_node(3)
        array.remove_node(3)
        for h in keys[:300]:
            assert tree.lookup_hash(int(h)) == array.lookup_hash(int(h))

    def test_matches_after_addition(self):
        keys = bulk_hash64(np.arange(1000))
        tree = TreeHashRing(nodes=range(4), vnodes_per_node=40)
        array = HashRing(nodes=range(4), vnodes_per_node=40)
        tree.add_node(10)
        array.add_node(10)
        for h in keys[:300]:
            assert tree.lookup_hash(int(h)) == array.lookup_hash(int(h))

    def test_duplicate_add_rejected(self):
        ring = TreeHashRing(nodes=range(3))
        with pytest.raises(ValueError):
            ring.add_node(1)

    def test_remove_unknown_rejected(self):
        with pytest.raises(KeyError):
            TreeHashRing(nodes=range(3)).remove_node(9)

    def test_empty_lookup_raises(self):
        with pytest.raises(LookupError):
            TreeHashRing().lookup_hash(123)

    @settings(max_examples=20, deadline=None)
    @given(
        n=st.integers(min_value=2, max_value=10),
        vn=st.integers(min_value=1, max_value=25),
        seed=st.integers(min_value=0, max_value=100),
    )
    def test_equivalence_property(self, n, vn, seed):
        rng = np.random.default_rng(seed)
        hashes = rng.integers(0, 2**63, size=100, dtype=np.uint64)
        tree = TreeHashRing(nodes=range(n), vnodes_per_node=vn)
        array = HashRing(nodes=range(n), vnodes_per_node=vn)
        assert [tree.lookup_hash(int(h)) for h in hashes] == [
            array.lookup_hash(int(h)) for h in hashes
        ]
