"""Tests for the client-side membership view."""

import pytest

from repro.core import MembershipView, NodeState


class TestMembershipView:
    def test_initial_all_active(self):
        m = MembershipView(range(4))
        assert m.active_nodes == (0, 1, 2, 3)
        assert m.failed_nodes == ()
        assert all(m.is_active(n) for n in range(4))

    def test_mark_failed(self):
        m = MembershipView(range(4))
        m.mark_failed(2)
        assert m.state_of(2) is NodeState.FAILED
        assert 2 in m.failed_nodes and 2 not in m.active_nodes

    def test_mark_active_rejoin(self):
        m = MembershipView(range(2))
        m.mark_failed(0)
        m.mark_active(0)
        assert m.is_active(0)

    def test_unknown_node_raises(self):
        m = MembershipView(range(2))
        with pytest.raises(KeyError):
            m.mark_failed(9)
        with pytest.raises(KeyError):
            m.state_of(9)

    def test_version_bumps_on_transitions_only(self):
        m = MembershipView(range(2))
        v0 = m.version
        m.mark_failed(1)
        v1 = m.version
        m.mark_failed(1)  # no-op: already failed
        assert v1 == v0 + 1 and m.version == v1

    def test_listeners_notified(self):
        m = MembershipView(range(3))
        events = []
        m.subscribe(lambda n, s: events.append((n, s)))
        m.mark_failed(1)
        m.mark_active(1)
        assert events == [(1, NodeState.FAILED), (1, NodeState.ACTIVE)]

    def test_admit_new_node(self):
        m = MembershipView(range(2))
        m.admit(7)
        assert m.is_active(7) and len(m) == 3
        with pytest.raises(ValueError):
            m.admit(7)

    def test_ensure_active_admits_unknown_node(self):
        m = MembershipView(range(2))
        v0 = m.version
        m.ensure_active(5)
        assert m.is_active(5) and m.version == v0 + 1

    def test_ensure_active_reactivates_failed_node(self):
        m = MembershipView(range(2))
        m.mark_failed(1)
        m.ensure_active(1)
        assert m.is_active(1)

    def test_ensure_active_idempotent_on_active_node(self):
        m = MembershipView(range(2))
        v0 = m.version
        m.ensure_active(0)  # already active: no transition, no bump
        assert m.version == v0

    def test_contains_and_len(self):
        m = MembershipView(range(3))
        assert 2 in m and 5 not in m and len(m) == 3
