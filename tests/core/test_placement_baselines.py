"""Tests for StaticHash, RendezvousHash, and RangePartition baselines."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    RangePartition,
    RendezvousHash,
    StaticHash,
    bulk_hash64,
    movement_on_removal,
)

KEYS = bulk_hash64(np.arange(20_000))


class TestStaticHash:
    def test_lookup_modulo_semantics(self):
        sh = StaticHash(nodes=["a", "b", "c"])
        h = 7
        assert sh.lookup_hash(h) == ["a", "b", "c"][h % 3]

    def test_bulk_matches_scalar(self):
        sh = StaticHash(nodes=range(7))
        bulk = sh.lookup_hashes(KEYS[:300])
        assert list(bulk) == [sh.lookup_hash(int(h)) for h in KEYS[:300]]

    def test_uniform_distribution(self):
        sh = StaticHash(nodes=range(8))
        counts = sh.assignment_counts(KEYS)
        arr = np.array(list(counts.values()))
        assert arr.max() < 1.1 * arr.mean()

    def test_removal_moves_most_keys(self):
        # The (N-1)/N global reshuffle that motivates the ring (Sec IV-B).
        sh = StaticHash(nodes=range(8))
        report = movement_on_removal(sh, KEYS, 3)
        assert report.movement_fraction > 0.8
        assert not report.is_minimal

    def test_duplicate_and_missing_nodes(self):
        sh = StaticHash(nodes=[1, 2])
        with pytest.raises(ValueError):
            sh.add_node(1)
        with pytest.raises(KeyError):
            sh.remove_node(9)

    def test_empty_lookup_raises(self):
        with pytest.raises(LookupError):
            StaticHash().lookup_hash(1)


class TestRendezvousHash:
    def test_bulk_matches_scalar(self):
        rv = RendezvousHash(nodes=range(9))
        bulk = rv.lookup_hashes(KEYS[:300])
        assert list(bulk) == [rv.lookup_hash(int(h)) for h in KEYS[:300]]

    def test_minimal_movement_on_removal(self):
        rv = RendezvousHash(nodes=range(8))
        report = movement_on_removal(rv, KEYS, 3)
        assert report.is_minimal
        assert report.lost_keys > 0

    def test_minimal_movement_on_addition(self):
        rv = RendezvousHash(nodes=range(8))
        before = rv.lookup_hashes(KEYS)
        rv.add_node(100)
        after = rv.lookup_hashes(KEYS)
        moved = before != after
        assert set(after[moved].tolist()) == {100}

    def test_uniformity(self):
        rv = RendezvousHash(nodes=range(8))
        counts = rv.assignment_counts(KEYS)
        arr = np.array(list(counts.values()))
        assert arr.max() < 1.15 * arr.mean()

    def test_membership_errors(self):
        rv = RendezvousHash(nodes=[1])
        with pytest.raises(ValueError):
            rv.add_node(1)
        with pytest.raises(KeyError):
            rv.remove_node(2)
        rv.remove_node(1)
        with pytest.raises(LookupError):
            rv.lookup_hash(0)

    @settings(max_examples=15, deadline=None)
    @given(st.integers(min_value=2, max_value=12), st.integers(min_value=0, max_value=11))
    def test_minimal_movement_property(self, n, victim_idx):
        victim = victim_idx % n
        rv = RendezvousHash(nodes=range(n))
        keys = KEYS[:2000]
        before = rv.lookup_hashes(keys)
        rv.remove_node(victim)
        after = rv.lookup_hashes(keys)
        assert set(before[before != after].tolist()) <= {victim}


class TestRangePartition:
    def test_lookup_contiguity(self):
        rp = RangePartition(nodes=range(4))
        lo, hi = rp.range_of(1)
        assert rp.lookup_hash(lo) == 1
        assert rp.lookup_hash(hi - 1) == 1

    def test_bulk_matches_scalar(self):
        rp = RangePartition(nodes=range(6))
        bulk = rp.lookup_hashes(KEYS[:300])
        assert list(bulk) == [rp.lookup_hash(int(h)) for h in KEYS[:300]]

    def test_even_initial_balance(self):
        rp = RangePartition(nodes=range(8))
        counts = rp.assignment_counts(KEYS)
        arr = np.array(list(counts.values()))
        assert arr.max() < 1.15 * arr.mean()

    def test_absorb_mode_minimal_but_imbalanced(self):
        rp = RangePartition(nodes=range(8), rebalance=False)
        report = movement_on_removal(rp, KEYS, 3)
        assert report.is_minimal
        rp.remove_node(3)
        counts = rp.assignment_counts(KEYS)
        arr = np.array(list(counts.values()))
        # The absorbing neighbour now carries ~2x the average share.
        assert arr.max() > 1.5 * arr.mean()

    def test_rebalance_mode_moves_collateral(self):
        # "Maintaining load balance might require adjustments to other
        # nodes' data ranges as well" (Sec IV-B).
        rp = RangePartition(nodes=range(8), rebalance=True)
        report = movement_on_removal(rp, KEYS, 3)
        assert report.collateral_moves > 0

    def test_rebalance_mode_stays_balanced(self):
        rp = RangePartition(nodes=range(8), rebalance=True)
        rp.remove_node(3)
        counts = rp.assignment_counts(KEYS)
        arr = np.array(list(counts.values()))
        assert arr.max() < 1.2 * arr.mean()

    def test_add_node_rebalance(self):
        rp = RangePartition(nodes=range(4), rebalance=True)
        rp.add_node(99)
        assert len(rp.nodes) == 5
        counts = rp.assignment_counts(KEYS)
        assert counts[99] > 0

    def test_add_node_absorb_splits_widest(self):
        rp = RangePartition(nodes=range(4), rebalance=False)
        rp.remove_node(1)
        rp.add_node(77)
        assert 77 in rp.nodes
        counts = rp.assignment_counts(KEYS)
        assert counts[77] > 0

    def test_membership_errors(self):
        rp = RangePartition(nodes=[1, 2])
        with pytest.raises(ValueError):
            rp.add_node(2)
        with pytest.raises(KeyError):
            rp.remove_node(5)

    def test_duplicate_nodes_rejected_at_init(self):
        with pytest.raises(ValueError):
            RangePartition(nodes=[1, 1])
