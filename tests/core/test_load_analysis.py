"""Tests for movement/redistribution analysis (Fig 6b machinery)."""

import numpy as np
import pytest

from repro.core import (
    HashRing,
    StaticHash,
    bulk_hash64,
    imbalance_stats,
    movement_on_removal,
    redistribution_after_failure,
)

KEYS = bulk_hash64(np.arange(30_000))


class TestMovementOnRemoval:
    def test_non_destructive(self):
        ring = HashRing(nodes=range(8), vnodes_per_node=50)
        movement_on_removal(ring, KEYS, 3)
        assert 3 in ring.nodes

    def test_ring_is_minimal(self):
        report = movement_on_removal(HashRing(nodes=range(8), vnodes_per_node=50), KEYS, 3)
        assert report.is_minimal
        assert report.moved_keys == report.lost_keys
        assert report.collateral_fraction == 0.0

    def test_modulo_is_not_minimal(self):
        report = movement_on_removal(StaticHash(nodes=range(8)), KEYS, 3)
        assert not report.is_minimal
        assert report.collateral_fraction > 0.7

    def test_counts_consistent(self):
        report = movement_on_removal(HashRing(nodes=range(4), vnodes_per_node=50), KEYS, 1)
        assert report.total_keys == len(KEYS)
        assert 0 < report.lost_keys < len(KEYS)
        assert report.movement_fraction == pytest.approx(report.moved_keys / len(KEYS))

    def test_unknown_victim(self):
        with pytest.raises(KeyError):
            movement_on_removal(StaticHash(nodes=range(3)), KEYS, 99)

    def test_label_override(self):
        report = movement_on_removal(StaticHash(nodes=range(3)), KEYS[:100], 0, label="custom")
        assert report.policy == "custom"


class TestRedistribution:
    def test_receivers_are_survivors(self):
        ring = HashRing(nodes=range(16), vnodes_per_node=100)
        rep = redistribution_after_failure(ring, KEYS, 5)
        assert 5 not in rep.receivers
        assert rep.lost_files == sum(rep.receivers.values())

    def test_more_vnodes_more_receivers(self):
        few = redistribution_after_failure(HashRing(nodes=range(32), vnodes_per_node=5), KEYS, 3)
        many = redistribution_after_failure(HashRing(nodes=range(32), vnodes_per_node=200), KEYS, 3)
        assert many.receiver_count > few.receiver_count

    def test_stats_consistent(self):
        rep = redistribution_after_failure(HashRing(nodes=range(8), vnodes_per_node=50), KEYS, 2)
        vals = list(rep.receivers.values())
        assert rep.files_per_receiver_mean == pytest.approx(np.mean(vals))
        assert rep.files_per_receiver_std == pytest.approx(np.std(vals))
        assert rep.files_per_receiver_max == max(vals)

    def test_empty_lost_set(self):
        # A victim that owns nothing (tiny key set) yields an empty report.
        ring = HashRing(nodes=range(64), vnodes_per_node=1)
        few_keys = KEYS[:3]
        owners = set(ring.lookup_hashes(few_keys).tolist())
        victim = next(n for n in ring.nodes if n not in owners)
        rep = redistribution_after_failure(ring, few_keys, victim)
        assert rep.lost_files == 0 and rep.receiver_count == 0
        assert rep.files_per_receiver_mean == 0.0

    def test_non_destructive(self):
        ring = HashRing(nodes=range(8), vnodes_per_node=50)
        redistribution_after_failure(ring, KEYS, 2)
        assert 2 in ring.nodes


class TestImbalanceStats:
    def test_uniform_load(self):
        s = imbalance_stats([10, 10, 10, 10])
        assert s.cv == 0.0 and s.max_over_mean == 1.0 and s.min_over_mean == 1.0

    def test_skewed_load(self):
        s = imbalance_stats([1, 1, 1, 97])
        assert s.cv > 1.0
        assert s.max_over_mean == pytest.approx(97 / 25)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            imbalance_stats([])

    def test_zero_mean(self):
        s = imbalance_stats([0, 0])
        assert s.cv == 0.0 and s.mean == 0.0
