"""Tests for capacity-weighted ring placement."""

import numpy as np
import pytest

from repro.core import HashRing, bulk_hash64

KEYS = bulk_hash64(np.arange(50_000))


class TestWeights:
    def test_default_weight_is_one(self):
        ring = HashRing(nodes=range(3), vnodes_per_node=50)
        assert ring.weight_of(1) == 1.0
        assert ring.vnodes_of(1) == 50

    def test_vnode_scaling(self):
        ring = HashRing(nodes=range(3), vnodes_per_node=100, weights={0: 2.0, 2: 0.25})
        assert ring.vnodes_of(0) == 200
        assert ring.vnodes_of(1) == 100
        assert ring.vnodes_of(2) == 25

    def test_tiny_weight_keeps_at_least_one_vnode(self):
        ring = HashRing(nodes=[7], vnodes_per_node=10, weights={7: 1e-6})
        assert ring.vnodes_of(7) == 1
        assert ring.ring_size == 1

    def test_invalid_weight(self):
        with pytest.raises(ValueError):
            HashRing(nodes=[0], weights={0: 0.0})
        with pytest.raises(ValueError):
            HashRing(nodes=[0], weights={0: -1.0})

    def test_load_proportional_to_weight(self):
        ring = HashRing(nodes=range(4), vnodes_per_node=200, weights={0: 2.0})
        counts = ring.assignment_counts(KEYS)
        others = np.mean([counts[n] for n in (1, 2, 3)])
        assert counts[0] == pytest.approx(2 * others, rel=0.15)

    def test_arc_fractions_track_weights(self):
        ring = HashRing(nodes=range(4), vnodes_per_node=200, weights={3: 0.5})
        fr = ring.arc_fractions()
        assert fr[3] == pytest.approx(0.5 / 3.5, abs=0.04)

    def test_minimal_movement_preserved_with_weights(self):
        ring = HashRing(nodes=range(6), vnodes_per_node=100, weights={1: 3.0, 4: 0.5})
        before = ring.lookup_hashes(KEYS)
        ring.remove_node(1)
        after = ring.lookup_hashes(KEYS)
        moved_from = set(before[before != after].tolist())
        assert moved_from <= {1}

    def test_heavy_node_loses_more_on_failure(self):
        ring = HashRing(nodes=range(8), vnodes_per_node=100, weights={0: 3.0})
        owners = ring.lookup_hashes(KEYS)
        lost_heavy = int((owners == 0).sum())
        lost_light = int((owners == 5).sum())
        assert lost_heavy > 2 * lost_light
