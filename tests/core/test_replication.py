"""Tests for the k-way replication extension."""

import numpy as np
import pytest

from repro.core import HashRing, ReplicatedRecache, bulk_hash64, salt_hash, salted_hashes

KEYS = bulk_hash64(np.arange(10_000))


def make(n=16, k=2):
    return ReplicatedRecache(HashRing(nodes=range(n), vnodes_per_node=100), replicas=k)


class TestSaltedHashes:
    def test_replica_zero_is_identity(self):
        np.testing.assert_array_equal(salted_hashes(KEYS, 0), KEYS)
        assert salt_hash(int(KEYS[0]), 0) == int(KEYS[0])

    def test_replicas_differ(self):
        a = salted_hashes(KEYS, 1)
        b = salted_hashes(KEYS, 2)
        assert not np.array_equal(a, KEYS)
        assert not np.array_equal(a, b)

    def test_scalar_matches_bulk(self):
        bulk = salted_hashes(KEYS[:50], 3)
        for i in range(50):
            assert salt_hash(int(KEYS[i]), 3) == int(bulk[i])

    def test_deterministic(self):
        np.testing.assert_array_equal(salted_hashes(KEYS, 1), salted_hashes(KEYS, 1))


class TestReplicatedRecache:
    def test_validation(self):
        with pytest.raises(ValueError):
            make(k=0)

    def test_primary_matches_plain_recache(self):
        p = make()
        for i in range(50):
            assert p.target_for(i).node == p.placement.lookup(i)

    def test_replica_targets_count(self):
        p = make(k=3)
        assert len(p.replica_targets("key-x")) == 3

    def test_replicas_mostly_distinct(self):
        p = make(n=32, k=2)
        frac = p.distinct_replica_fraction(KEYS)
        assert frac > 0.9  # ~1/N collision chance

    def test_surviving_replica_skips_failed_primary(self):
        p = make()
        key = "sample-7"
        primary, secondary = p.replica_targets(key)[:2]
        if primary == secondary:
            pytest.skip("replica collision for this key")
        p.on_node_failed(primary)
        survivor = p.surviving_replica(key)
        assert survivor != primary

    def test_single_failure_never_loses_both_replicas(self):
        p = make(n=16, k=2)
        owners = p.replica_owner_matrix(KEYS).astype(np.int64)
        for victim in range(16):
            both_lost = (owners[0] == victim) & (owners[1] == victim)
            # Collisions make this possible but rare (~1/N of victim's keys).
            assert both_lost.mean() < 0.01

    def test_owner_matrix_shape(self):
        p = make(k=3)
        m = p.replica_owner_matrix(KEYS[:100])
        assert m.shape == (3, 100)


class TestFluidReplication:
    def _run(self, replication, seed=4):
        from repro.cluster.config import frontier
        from repro.dl import Dataset, TrainingConfig
        from repro.dl.fastsim import FluidTrainingModel

        ds = Dataset(name="t", n_samples=1024, sample_bytes=2.2e6)
        cfg = TrainingConfig(epochs=4, batch_size=8)
        return FluidTrainingModel(
            frontier(16), ds, "FT w/ NVMe", cfg, n_failures=2, seed=seed, replication=replication
        ).run()

    def test_replication_reduces_refetches(self):
        single = self._run(1)
        repl = self._run(2)
        assert repl.pfs_files < single.pfs_files
        assert repl.total_time <= single.total_time

    def test_replication_requires_ring_policy(self):
        from repro.cluster.config import frontier
        from repro.dl import Dataset, TrainingConfig
        from repro.dl.fastsim import FluidTrainingModel

        ds = Dataset(name="t", n_samples=64, sample_bytes=1e6)
        with pytest.raises(ValueError):
            FluidTrainingModel(
                frontier(4), ds, "FT w/ PFS", TrainingConfig(), replication=2
            )

    def test_invalid_replication(self):
        from repro.cluster.config import frontier
        from repro.dl import Dataset, TrainingConfig
        from repro.dl.fastsim import FluidTrainingModel

        ds = Dataset(name="t", n_samples=64, sample_bytes=1e6)
        with pytest.raises(ValueError):
            FluidTrainingModel(
                frontier(4), ds, "FT w/ NVMe", TrainingConfig(), replication=0
            )
