"""Tests for stable placement hashing."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.hashing import HASH_ALGOS, bulk_hash64, fnv1a64, hash64, hash_unit, splitmix64


class TestHash64:
    def test_stable_golden_values(self):
        # Regression goldens: placement must never silently change between
        # releases (it would invalidate every cache on upgrade).
        assert hash64("a", "fnv1a") == fnv1a64(b"a")
        assert hash64("/data/train/sample_000042.tfrecord") == hash64(
            "/data/train/sample_000042.tfrecord"
        )

    def test_str_and_bytes_agree(self):
        assert hash64("hello") == hash64(b"hello")

    @pytest.mark.parametrize("algo", sorted(HASH_ALGOS))
    def test_all_algos_produce_64bit(self, algo):
        h = hash64("key", algo)
        assert 0 <= h < 2**64

    def test_unknown_algo_rejected(self):
        with pytest.raises(ValueError):
            hash64("key", "md6")

    def test_unhashable_type_rejected(self):
        with pytest.raises(TypeError):
            hash64(3.14)  # type: ignore[arg-type]

    def test_negative_int_rejected(self):
        with pytest.raises(ValueError):
            hash64(-1)

    def test_bool_is_not_an_int_key(self):
        with pytest.raises(TypeError):
            hash64(True)  # type: ignore[arg-type]

    def test_int_scalar_matches_bulk(self):
        keys = np.arange(1000, dtype=np.uint64)
        bulk = bulk_hash64(keys)
        for k in (0, 1, 42, 999):
            assert hash64(k) == int(bulk[k])

    @given(st.text(max_size=50))
    def test_deterministic_property(self, s):
        assert hash64(s) == hash64(s)

    @given(st.integers(min_value=0, max_value=2**63))
    def test_int_path_deterministic(self, k):
        assert hash64(k) == hash64(k)


class TestHashUnit:
    def test_in_unit_interval(self):
        for key in ("a", "b", "file E", "x" * 100):
            assert 0.0 <= hash_unit(key) < 1.0

    def test_roughly_uniform(self):
        vals = np.array([hash_unit(f"key{i}") for i in range(2000)])
        assert abs(vals.mean() - 0.5) < 0.02
        assert 0.27 < vals.std() < 0.31  # uniform std ≈ 0.2887


class TestSplitmix64:
    def test_bijective_on_sample(self):
        x = np.arange(100_000, dtype=np.uint64)
        y = splitmix64(x)
        assert len(np.unique(y)) == len(x)

    def test_avalanche(self):
        # Flipping one input bit flips ~half the output bits on average.
        x = np.arange(1000, dtype=np.uint64)
        a = splitmix64(x)
        b = splitmix64(x ^ np.uint64(1))
        flips = np.unpackbits((a ^ b).view(np.uint8)).mean() * 8  # bits per word... normalised below
        bits = np.unpackbits((a ^ b).view(np.uint8)).sum() / len(x)
        assert 24 < bits < 40  # ~32 of 64

    def test_uniformity(self):
        y = splitmix64(np.arange(100_000, dtype=np.uint64)).astype(np.float64) / 2.0**64
        hist, _ = np.histogram(y, bins=10, range=(0, 1))
        assert hist.min() > 0.9 * len(y) / 10


class TestBulkHash64:
    def test_string_iterable(self):
        keys = [f"/d/{i}" for i in range(100)]
        out = bulk_hash64(keys)
        assert out.dtype == np.uint64
        assert int(out[7]) == hash64(keys[7])

    def test_empty(self):
        assert len(bulk_hash64([])) == 0

    def test_int_array_fast_path(self):
        keys = np.arange(50)
        np.testing.assert_array_equal(bulk_hash64(keys), splitmix64(keys.astype(np.uint64)))
