"""Tests for multiprobe consistent hashing (``HashRing(probes=k)``).

Multiprobe derives ``k`` candidate positions per key and awards the key
to the probe with the smallest clockwise gap to its successor vnode —
hotspot smoothing without growing the ring.  These tests pin the
invariants the rebalance planner relies on: consistency across the
scalar/vector/excluding/including lookup paths, minimal movement on both
removal and join, and the variance reduction that justifies the feature.
"""

import numpy as np
import pytest

from repro.core import HashRing, bulk_hash64

KEYS = bulk_hash64(np.arange(30_000))


def _spread(owners):
    _, counts = np.unique(owners, return_counts=True)
    return counts.std() / counts.mean()


class TestMultiprobeLookups:
    def test_probes_one_matches_legacy_exactly(self):
        legacy = HashRing(nodes=range(5), vnodes_per_node=80)
        explicit = HashRing(nodes=range(5), vnodes_per_node=80, probes=1)
        assert (legacy.lookup_hashes(KEYS) == explicit.lookup_hashes(KEYS)).all()

    def test_scalar_vector_agree(self):
        ring = HashRing(nodes=range(4), vnodes_per_node=20, probes=5)
        owners = ring.lookup_hashes(KEYS[:200])
        for h, o in zip(KEYS[:200], owners):
            assert ring.lookup_hash(int(h)) == o

    def test_excluding_matches_mutation(self):
        ring = HashRing(nodes=range(5), vnodes_per_node=30, probes=3)
        ex = ring.lookup_hashes_excluding(KEYS, 2)
        mutated = ring.clone()
        mutated.remove_node(2)
        assert (ex == mutated.lookup_hashes(KEYS)).all()

    def test_including_matches_mutation(self):
        ring = HashRing(nodes=range(4), vnodes_per_node=30, probes=3)
        inc = ring.lookup_hashes_including(KEYS, 9, weight=2.0)
        mutated = ring.clone()
        mutated.add_node(9, weight=2.0)
        assert (inc == mutated.lookup_hashes(KEYS)).all()

    def test_invalid_probes(self):
        with pytest.raises(ValueError):
            HashRing(nodes=range(2), probes=0)


class TestMultiprobeMovement:
    def test_removal_moves_only_victims_keys(self):
        ring = HashRing(nodes=range(6), vnodes_per_node=40, probes=4)
        before = ring.lookup_hashes(KEYS)
        ring.remove_node(3)
        after = ring.lookup_hashes(KEYS)
        moved_from = set(before[before != after].tolist())
        assert moved_from <= {3}

    def test_join_moves_only_to_newcomer(self):
        ring = HashRing(nodes=range(6), vnodes_per_node=40, probes=4)
        before = ring.lookup_hashes(KEYS)
        ring.add_node(6)
        after = ring.lookup_hashes(KEYS)
        moved_to = set(after[before != after].tolist())
        assert moved_to <= {6}


class TestMultiprobeBalance:
    def test_variance_reduction_at_low_vnodes(self):
        """The feature's reason to exist: at low vnode counts, multiprobe
        measurably flattens the per-node load distribution."""
        single = HashRing(nodes=range(8), vnodes_per_node=8, probes=1)
        multi = HashRing(nodes=range(8), vnodes_per_node=8, probes=5)
        assert _spread(multi.lookup_hashes(KEYS)) < _spread(single.lookup_hashes(KEYS)) * 0.7

    def test_weighted_multiprobe_tracks_weights(self):
        ring = HashRing(
            nodes=range(4), vnodes_per_node=150, weights={0: 2.0}, probes=3
        )
        counts = ring.assignment_counts(KEYS)
        others = np.mean([counts[n] for n in (1, 2, 3)])
        assert counts[0] == pytest.approx(2 * others, rel=0.2)

    def test_clone_preserves_probes_and_weights(self):
        ring = HashRing(nodes=range(3), vnodes_per_node=25, weights={1: 1.5}, probes=4)
        twin = ring.clone()
        assert twin.probes == 4 and twin.weight_of(1) == 1.5
        assert (twin.lookup_hashes(KEYS) == ring.lookup_hashes(KEYS)).all()
