"""Tests for the timeout-counter failure detector (Sec IV-A)."""

import pytest

from repro.core import TimeoutFailureDetector


class TestValidation:
    def test_ttl_positive(self):
        with pytest.raises(ValueError):
            TimeoutFailureDetector(ttl=0)

    def test_threshold_at_least_one(self):
        with pytest.raises(ValueError):
            TimeoutFailureDetector(threshold=0)


class TestDeclaration:
    def test_declares_exactly_at_threshold(self):
        det = TimeoutFailureDetector(ttl=1.0, threshold=3)
        assert det.record_timeout("n") is False
        assert det.record_timeout("n") is False
        assert det.record_timeout("n") is True
        assert det.is_declared("n")

    def test_threshold_one_declares_immediately(self):
        det = TimeoutFailureDetector(threshold=1)
        assert det.record_timeout("n") is True

    def test_success_resets_counter(self):
        # The paper's raison d'être for the counter: transient delays must
        # not trigger recovery.
        det = TimeoutFailureDetector(threshold=3)
        det.record_timeout("n")
        det.record_timeout("n")
        det.record_success("n")
        assert det.record_timeout("n") is False
        assert det.pending_count("n") == 1

    def test_declared_node_returns_false_afterwards(self):
        det = TimeoutFailureDetector(threshold=1)
        assert det.record_timeout("n") is True
        assert det.record_timeout("n") is False  # already declared

    def test_counters_are_per_node(self):
        det = TimeoutFailureDetector(threshold=2)
        det.record_timeout("a")
        assert det.record_timeout("b") is False
        assert det.record_timeout("a") is True
        assert not det.is_declared("b")

    def test_declared_frozenset(self):
        det = TimeoutFailureDetector(threshold=1)
        det.record_timeout("x")
        det.record_timeout("y")
        assert det.declared == frozenset({"x", "y"})

    def test_reset_allows_rejoin(self):
        det = TimeoutFailureDetector(threshold=1)
        det.record_timeout("n")
        det.reset("n")
        assert not det.is_declared("n")
        assert det.record_timeout("n") is True


class TestStats:
    def test_timeout_and_success_counts(self):
        det = TimeoutFailureDetector(threshold=5)
        for _ in range(3):
            det.record_timeout("n")
        det.record_success("n")
        assert det.stats.timeouts == 3
        assert det.stats.successes == 1
        assert det.stats.absorbed_transients == 3

    def test_detection_latency_recorded(self):
        det = TimeoutFailureDetector(ttl=1.0, threshold=3)
        det.record_timeout("n", now=10.0)
        det.record_timeout("n", now=11.0)
        det.record_timeout("n", now=12.0)
        assert det.stats.detection_latency["n"] == pytest.approx(2.0)
        assert det.stats.declared_failures == 1

    def test_worst_case_detection_time(self):
        det = TimeoutFailureDetector(ttl=2.0, threshold=4)
        assert det.worst_case_detection_time == pytest.approx(8.0)

    def test_first_timeout_cleared_on_success(self):
        det = TimeoutFailureDetector(threshold=3)
        det.record_timeout("n", now=5.0)
        det.record_success("n")
        assert "n" not in det.stats.first_timeout_at
