"""Tests for the three fault-tolerance policies (NoFT / PFS / NVMe)."""

import numpy as np
import pytest

from repro.core import (
    ElasticRecache,
    HashRing,
    NoFT,
    PFSRedirect,
    StaticHash,
    Target,
    UnrecoverableNodeFailure,
    bulk_hash64,
    make_policy,
)

KEYS = [f"/d/sample_{i:05d}" for i in range(300)]


def ring(n=8):
    return HashRing(nodes=range(n), vnodes_per_node=50)


class TestTarget:
    def test_constructors(self):
        assert Target.to_node(3) == Target("node", 3)
        assert Target.to_pfs() == Target("pfs")


class TestMakePolicy:
    @pytest.mark.parametrize(
        "name,cls",
        [("NoFT", NoFT), ("noft", NoFT), ("FT w/ PFS", PFSRedirect), ("pfs", PFSRedirect),
         ("FT w/ NVMe", ElasticRecache), ("nvme", ElasticRecache)],
    )
    def test_names(self, name, cls):
        assert isinstance(make_policy(name, ring()), cls)

    def test_unknown_name(self):
        with pytest.raises(ValueError):
            make_policy("bogus", ring())


class TestNoFT:
    def test_routes_to_owner(self):
        p = NoFT(ring())
        t = p.target_for(KEYS[0])
        assert t.kind == "node" and t.node in p.placement.nodes

    def test_failure_aborts(self):
        p = NoFT(ring())
        with pytest.raises(UnrecoverableNodeFailure) as exc:
            p.on_node_failed(3)
        assert exc.value.node == 3
        assert 3 in p.failed_nodes


class TestPFSRedirect:
    def test_failed_owner_keys_go_to_pfs(self):
        p = PFSRedirect(StaticHash(nodes=range(8)))
        victim_keys = [k for k in KEYS if p.placement.lookup(k) == 3]
        assert victim_keys, "test needs at least one key on node 3"
        p.on_node_failed(3)
        for k in victim_keys:
            assert p.target_for(k) == Target.to_pfs()

    def test_surviving_keys_unmoved(self):
        p = PFSRedirect(StaticHash(nodes=range(8)))
        before = {k: p.target_for(k) for k in KEYS}
        p.on_node_failed(3)
        for k, t in before.items():
            if t.node != 3:
                assert p.target_for(k) == t

    def test_placement_not_mutated(self):
        p = PFSRedirect(StaticHash(nodes=range(8)))
        p.on_node_failed(3)
        assert 3 in p.placement.nodes  # intentionally untouched
        assert p.active_nodes == tuple(n for n in range(8) if n != 3)

    def test_multiple_failures_accumulate(self):
        p = PFSRedirect(StaticHash(nodes=range(8)))
        p.on_node_failed(1)
        p.on_node_failed(5)
        assert p.failed_nodes == frozenset({1, 5})
        pfs_count = sum(1 for k in KEYS if p.target_for(k).kind == "pfs")
        assert pfs_count > 0


class TestElasticRecache:
    def test_failed_node_removed_from_ring(self):
        p = ElasticRecache(ring())
        p.on_node_failed(3)
        assert 3 not in p.placement.nodes
        for k in KEYS:
            t = p.target_for(k)
            assert t.kind == "node" and t.node != 3

    def test_never_routes_to_pfs(self):
        p = ElasticRecache(ring())
        p.on_node_failed(2)
        p.on_node_failed(6)
        assert all(p.target_for(k).kind == "node" for k in KEYS)

    def test_minimal_reroute(self):
        p = ElasticRecache(ring())
        before = {k: p.target_for(k).node for k in KEYS}
        p.on_node_failed(3)
        for k, owner in before.items():
            if owner != 3:
                assert p.target_for(k).node == owner

    def test_idempotent_failure_handling(self):
        # Several clients may independently declare the same node.
        p = ElasticRecache(ring())
        p.on_node_failed(3)
        owners = [p.target_for(k).node for k in KEYS]
        p.on_node_failed(3)  # second declaration: no-op
        assert [p.target_for(k).node for k in KEYS] == owners

    def test_rejoin_restores_routing(self):
        p = ElasticRecache(ring())
        before = {k: p.target_for(k).node for k in KEYS}
        p.on_node_failed(3)
        p.on_node_joined(3)
        assert {k: p.target_for(k).node for k in KEYS} == before
        assert 3 not in p.failed_nodes

    def test_cascading_failures(self):
        p = ElasticRecache(ring(8))
        for victim in (0, 1, 2, 3, 4, 5, 6):
            p.on_node_failed(victim)
        assert p.placement.nodes == (7,)
        assert all(p.target_for(k).node == 7 for k in KEYS[:20])

    def test_lost_keys_scatter_across_survivors(self):
        # The load-balancing claim: with vnodes, one node's keys spread
        # over many receivers rather than one neighbour.
        p = ElasticRecache(HashRing(nodes=range(16), vnodes_per_node=100))
        hashes = bulk_hash64(np.arange(20000))
        before = p.placement.lookup_hashes(hashes)
        victim = 5
        lost = hashes[before == victim]
        p.on_node_failed(victim)
        receivers = set(p.placement.lookup_hashes(lost).tolist())
        assert len(receivers) >= 10
