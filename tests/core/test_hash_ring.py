"""Tests for the consistent-hash ring — the paper's core mechanism."""

import copy

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import EmptyRingError, HashRing, bulk_hash64

KEYS = bulk_hash64(np.arange(20_000))


def make_ring(n=8, vn=50):
    return HashRing(nodes=range(n), vnodes_per_node=vn)


class TestConstruction:
    def test_default_vnodes_match_paper(self):
        assert HashRing().vnodes_per_node == 100

    def test_invalid_vnodes(self):
        with pytest.raises(ValueError):
            HashRing(vnodes_per_node=0)

    def test_ring_size(self):
        assert make_ring(8, 50).ring_size == 400

    def test_duplicate_node_rejected(self):
        ring = make_ring(4)
        with pytest.raises(ValueError):
            ring.add_node(2)

    def test_nodes_order_stable(self):
        assert make_ring(5).nodes == (0, 1, 2, 3, 4)


class TestLookup:
    def test_empty_ring_raises(self):
        ring = HashRing()
        with pytest.raises(EmptyRingError):
            ring.lookup("x")
        with pytest.raises(EmptyRingError):
            ring.lookup_hashes(KEYS[:5])

    def test_lookup_deterministic(self):
        ring = make_ring()
        assert [ring.lookup(f"k{i}") for i in range(50)] == [ring.lookup(f"k{i}") for i in range(50)]

    def test_lookup_in_membership(self):
        ring = make_ring()
        assert all(ring.lookup(f"k{i}") in ring.nodes for i in range(200))

    def test_bulk_matches_scalar(self):
        ring = make_ring()
        bulk = ring.lookup_hashes(KEYS[:500])
        scalar = [ring.lookup_hash(int(h)) for h in KEYS[:500]]
        assert list(bulk) == scalar

    def test_single_node_owns_everything(self):
        ring = HashRing(nodes=[7], vnodes_per_node=10)
        assert set(ring.lookup_hashes(KEYS[:100]).tolist()) == {7}

    def test_wraparound_top_of_ring(self):
        ring = make_ring()
        top = int(ring._positions[-1])
        # A hash strictly above the highest vnode wraps to the lowest one.
        assert ring.lookup_hash(top) == ring._owners[0] or ring.lookup_hash(top) in ring.nodes
        assert ring.lookup_hash(2**64 - 1) == ring._owners[0]

    def test_rebuild_after_add_changes_some_owners_only_to_new_node(self):
        ring = make_ring(8)
        before = ring.lookup_hashes(KEYS)
        ring.add_node(99)
        after = ring.lookup_hashes(KEYS)
        moved = before != after
        assert set(after[moved].tolist()) == {99}

    def test_load_roughly_uniform_with_many_vnodes(self):
        ring = make_ring(8, vn=200)
        counts = ring.assignment_counts(KEYS)
        arr = np.array([counts[n] for n in ring.nodes])
        assert arr.min() > 0.6 * arr.mean()
        assert arr.max() < 1.5 * arr.mean()


class TestRemoval:
    def test_remove_unknown_raises(self):
        with pytest.raises(KeyError):
            make_ring().remove_node(42)

    def test_minimal_movement_invariant(self):
        ring = make_ring(8)
        before = ring.lookup_hashes(KEYS)
        ring.remove_node(3)
        after = ring.lookup_hashes(KEYS)
        moved = before != after
        # Only keys previously owned by node 3 may move.
        assert set(before[moved].tolist()) == {3}

    def test_remove_then_readd_restores_placement(self):
        ring = make_ring(8)
        before = ring.lookup_hashes(KEYS)
        ring.remove_node(5)
        ring.add_node(5)
        after = ring.lookup_hashes(KEYS)
        np.testing.assert_array_equal(before, after)

    def test_cascade_removals_stay_minimal(self):
        ring = make_ring(10)
        for victim in (2, 7, 4):
            before = ring.lookup_hashes(KEYS)
            ring.remove_node(victim)
            after = ring.lookup_hashes(KEYS)
            moved = before != after
            assert set(before[moved].tolist()) == {victim}

    def test_lookup_hashes_excluding_equals_removal(self):
        ring = make_ring(8)
        virtual = ring.lookup_hashes_excluding(KEYS, 3)
        twin = copy.deepcopy(ring)
        twin.remove_node(3)
        real = twin.lookup_hashes(KEYS)
        np.testing.assert_array_equal(virtual, real)
        # and the original ring is untouched
        assert 3 in ring.nodes

    def test_excluding_unknown_node_raises(self):
        with pytest.raises(KeyError):
            make_ring().lookup_hashes_excluding(KEYS[:5], 42)

    def test_excluding_last_node_raises(self):
        ring = HashRing(nodes=[0], vnodes_per_node=5)
        with pytest.raises(EmptyRingError):
            ring.lookup_hashes_excluding(KEYS[:5], 0)


class TestSuccessors:
    def test_first_successor_is_owner(self):
        ring = make_ring(8)
        for i in range(50):
            assert ring.successors(f"k{i}", 1) == [ring.lookup(f"k{i}")]

    def test_distinct_nodes(self):
        ring = make_ring(8)
        succ = ring.successors("key", 5)
        assert len(succ) == len(set(succ)) == 5

    def test_k_capped_at_membership(self):
        ring = make_ring(3)
        assert len(ring.successors("key", 10)) == 3

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            make_ring().successors("key", 0)


class TestIntrospection:
    def test_arc_fractions_sum_to_one(self):
        fractions = make_ring(8).arc_fractions()
        assert sum(fractions.values()) == pytest.approx(1.0)
        assert all(f > 0 for f in fractions.values())

    def test_arc_fractions_track_load(self):
        ring = make_ring(8, vn=200)
        fractions = ring.arc_fractions()
        counts = ring.assignment_counts(KEYS)
        for n in ring.nodes:
            assert counts[n] / len(KEYS) == pytest.approx(fractions[n], abs=0.02)

    def test_vnode_positions_sorted_and_counted(self):
        ring = make_ring(4, vn=30)
        pos = ring.vnode_positions(2)
        assert len(pos) == 30
        assert np.all(np.diff(pos.astype(np.float64)) >= 0)

    def test_positions_unit_interval(self):
        u = make_ring().positions_unit()
        assert np.all((u >= 0) & (u < 1))

    def test_memory_grows_with_vnodes(self):
        assert make_ring(8, vn=200).memory_footprint() > make_ring(8, vn=10).memory_footprint()


class TestProperties:
    @settings(max_examples=25, deadline=None)
    @given(
        n_nodes=st.integers(min_value=2, max_value=20),
        vn=st.integers(min_value=1, max_value=40),
        victim_idx=st.integers(min_value=0, max_value=19),
    )
    def test_minimal_movement_property(self, n_nodes, vn, victim_idx):
        victim = victim_idx % n_nodes
        ring = HashRing(nodes=range(n_nodes), vnodes_per_node=vn)
        keys = KEYS[:2000]
        before = ring.lookup_hashes(keys)
        ring.remove_node(victim)
        after = ring.lookup_hashes(keys)
        moved_from = set(before[before != after].tolist())
        assert moved_from <= {victim}

    @settings(max_examples=25, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=10**6), min_size=1, max_size=12, unique=True))
    def test_membership_independent_of_insertion_order(self, nodes):
        keys = KEYS[:500]
        a = HashRing(nodes=nodes, vnodes_per_node=20).lookup_hashes(keys)
        b = HashRing(nodes=list(reversed(nodes)), vnodes_per_node=20).lookup_hashes(keys)
        np.testing.assert_array_equal(a, b)

    @settings(max_examples=15, deadline=None)
    @given(st.integers(min_value=2, max_value=12), st.integers(min_value=5, max_value=50))
    def test_every_node_owns_some_arc(self, n_nodes, vn):
        ring = HashRing(nodes=range(n_nodes), vnodes_per_node=vn)
        fractions = ring.arc_fractions()
        assert set(fractions) == set(range(n_nodes))
        assert sum(fractions.values()) == pytest.approx(1.0)
