"""Tests for the reproduction scorecard."""

from repro.experiments import ExperimentScale, format_scorecard, run_scorecard
from repro.experiments.scorecard import Scorecard


class TestScorecardMechanics:
    def test_add_and_counts(self):
        card = Scorecard()
        card.add("e", "c1", "p", "m", True)
        card.add("e", "c2", "p", "m", False)
        assert card.total == 2 and card.passed == 1 and not card.all_passed

    def test_format_contains_results(self):
        card = Scorecard()
        card.add("fig9", "criterion-x", "pub", "meas", True)
        text = format_scorecard(card)
        assert "criterion-x" in text and "PASS" in text and "1/1" in text


class TestScorecardRun:
    def test_all_criteria_pass_at_smoke_scale(self):
        card = run_scorecard(scale=ExperimentScale.smoke(), seed=2024)
        failing = [c for c in card.criteria if not c.passed]
        assert not failing, f"failing criteria: {[(c.experiment, c.name) for c in failing]}"

    def test_covers_every_experiment(self):
        card = run_scorecard(scale=ExperimentScale.smoke(), seed=2024)
        exps = {c.experiment for c in card.criteria}
        assert {"table1", "fig1", "fig2", "fig5a", "fig5b", "fig6a", "fig6b"} <= exps
