"""Tests for the experiment harness: every table/figure runs and has the
published shape at smoke scale."""

import pytest

from repro.experiments import (
    ExperimentScale,
    format_detector_ablation,
    format_fig1,
    format_fig2,
    format_fig5,
    format_fig6a,
    format_fig6b,
    format_placement_ablation,
    format_recovery_ablation,
    format_table1,
    run_detector_ablation,
    run_fig1,
    run_fig2,
    run_fig5,
    run_fig6a,
    run_fig6b,
    run_placement_ablation,
    run_recovery_ablation,
    run_table1,
)

SMOKE = ExperimentScale.smoke()


class TestTable1:
    def test_exact_published_counts(self):
        r = run_table1(seed=1)
        assert r.census.total_jobs == 181_933
        assert r.census.total_failures == 45_556
        assert 40 < r.combined_node_failure_pct < 55

    def test_format_mentions_paper(self):
        text = format_table1(run_table1(seed=1))
        assert "Table I" in text and "25.04%" in text


class TestFig1:
    def test_shapes(self):
        r = run_fig1(seed=1)
        assert r.n_weeks == 27
        assert r.weeks_with_failures == 27
        assert r.spike_weeks >= 1
        assert 60 < r.weekly.overall < 95

    def test_format(self):
        assert "Week" in format_fig1(run_fig1(seed=1))


class TestFig2:
    def test_published_trends(self):
        r = run_fig2(seed=1)
        assert r.node_fail_trend_increasing()
        assert r.elapsed_mix_flat()
        assert r.top_bucket.share["NODE_FAIL"] > 25

    def test_format(self):
        text = format_fig2(run_fig2(seed=1))
        assert "Fig 2(a)" in text and "Fig 2(b)" in text


class TestFig5:
    @pytest.fixture(scope="class")
    def result(self):
        return run_fig5(scale=SMOKE, model="fluid")

    def test_rows_cover_node_counts(self, result):
        assert [r.n_nodes for r in result.rows] == list(SMOKE.node_counts)

    def test_5a_time_decreases_with_nodes(self, result):
        for policy in ("NoFT", "FT w/ PFS", "FT w/ NVMe"):
            times = [r.nofail[policy] for r in result.rows]
            assert times[0] > times[-1]

    def test_5b_failures_cost_time(self, result):
        for r in result.rows:
            assert r.withfail["FT w/ PFS"] > r.nofail["FT w/ PFS"]
            assert r.withfail["FT w/ NVMe"] > r.nofail["FT w/ NVMe"]

    def test_5b_nvme_beats_pfs(self, result):
        for r in result.rows:
            assert r.nvme_vs_pfs_pct > 0  # paper: 14.8% / 24.9%

    def test_failures_all_injected(self, result):
        for r in result.rows:
            assert r.failures_injected == SMOKE.n_failures

    def test_des_model_smoke(self):
        tiny = ExperimentScale(
            name="tiny", dataset_scale=1 / 2048, node_counts=(8,), n_failures=1, repeats=1
        )
        res = run_fig5(scale=tiny, model="des")
        assert res.model == "des"
        row = res.rows[0]
        assert row.withfail["FT w/ NVMe"] > 0

    def test_invalid_model(self):
        with pytest.raises(ValueError):
            run_fig5(scale=SMOKE, model="quantum")

    def test_format(self, result):
        text = format_fig5(result)
        assert "Fig 5(a)" in text and "Fig 5(b)" in text and "NoFT" in text


class TestFig6a:
    @pytest.fixture(scope="class")
    def result(self):
        return run_fig6a(scale=SMOKE)

    def test_ordering_no_failure_fastest(self, result):
        for row in result.rows:
            assert row.no_failure < row.pfs_redirect
            assert row.no_failure < row.nvme_recache

    def test_nvme_beats_pfs_in_victim_epoch(self, result):
        for row in result.rows:
            assert row.nvme_recache <= row.pfs_redirect

    def test_format(self, result):
        assert "victim-epoch" in format_fig6a(result)


class TestFig6b:
    @pytest.fixture(scope="class")
    def result(self):
        return run_fig6b(scale=SMOKE, n_files=20_000, seed=1)

    def test_receivers_rise_with_vnodes(self, result):
        receivers = [r.receiver_nodes_mean for r in result.rows]
        assert receivers == sorted(receivers)
        assert receivers[-1] > 3 * receivers[0]

    def test_files_per_receiver_fall(self, result):
        files = [r.files_per_node_mean for r in result.rows]
        assert files[0] > files[-1]

    def test_balance_improves(self, result):
        stds = [r.files_per_node_std for r in result.rows]
        assert stds[0] > stds[-1]

    def test_memory_grows(self, result):
        mems = [r.ring_memory_bytes for r in result.rows]
        assert mems == sorted(mems)

    def test_saturation_flag(self, result):
        assert result.saturating()

    def test_format(self, result):
        assert "Fig 6(b)" in format_fig6b(result)


class TestAblations:
    def test_placement_movement_ordering(self):
        r = run_placement_ablation(n_nodes=16, n_keys=20_000)
        by_name = {m.policy: m for m in r.movement}
        assert by_name["HashRing (paper)"].is_minimal
        assert by_name["Rendezvous (multi-hash)"].is_minimal
        assert not by_name["StaticHash (orig. HVAC)"].is_minimal
        assert by_name["StaticHash (orig. HVAC)"].movement_fraction > 0.8
        assert "TreeHashRing (std::map)" in r.timing

    def test_placement_format(self):
        text = format_placement_ablation(run_placement_ablation(n_nodes=8, n_keys=5_000))
        assert "Strategy" in text

    def test_detector_tradeoff(self):
        r = run_detector_ablation(ttls=(0.05, 2.0), thresholds=(1, 3), trials=50)
        pts = {(p.ttl, p.threshold): p for p in r.points}
        # Aggressive TTL + threshold 1 → many false positives; lenient
        # TTL over the tail → none.
        assert pts[(0.05, 1)].false_positive_rate > 0.5
        assert pts[(2.0, 3)].false_positive_rate < 0.05
        # Detection delay grows with both knobs.
        assert pts[(2.0, 3)].mean_detection_delay > pts[(0.05, 1)].mean_detection_delay

    def test_detector_format(self):
        assert "TTL" in format_detector_ablation(run_detector_ablation(trials=20))

    def test_recovery_ablation(self):
        r = run_recovery_ablation(scale=SMOKE)
        for row in r.rows:
            assert row.epoch_recovery >= row.step_recovery
            assert row.step_recovery > row.nofail

    def test_recovery_format(self):
        assert "Recovery" in format_recovery_ablation(run_recovery_ablation(scale=SMOKE))
