"""Tests for the experiment-scale presets."""

from repro.dl import TrainingConfig
from repro.experiments import PAPER_FAILURES, PAPER_NODE_COUNTS, ExperimentScale


class TestPresets:
    def test_paper_matches_published_parameters(self):
        p = ExperimentScale.paper()
        assert p.dataset_scale == 1.0
        assert p.node_counts == PAPER_NODE_COUNTS == (64, 128, 256, 512, 1024)
        assert p.n_failures == PAPER_FAILURES == 5
        assert p.epochs == 5  # "We ran 5 epochs per experiment"
        assert p.repeats == 3  # "all experiments were repeated three times"
        assert p.fig6b_trials == 500  # "conducted 500 times"
        assert p.fig6b_nodes == 1024
        assert 100 in p.fig6b_vnode_counts and 1000 in p.fig6b_vnode_counts

    def test_quick_is_smaller_than_paper(self):
        q, p = ExperimentScale.quick(), ExperimentScale.paper()
        assert q.dataset_scale < p.dataset_scale
        assert len(q.node_counts) < len(p.node_counts)
        assert q.fig6b_trials < p.fig6b_trials

    def test_smoke_is_smallest(self):
        s, q = ExperimentScale.smoke(), ExperimentScale.quick()
        assert s.dataset_scale < q.dataset_scale
        assert max(s.node_counts) <= max(q.node_counts)

    def test_training_config_passthrough_and_override(self):
        scale = ExperimentScale.paper()
        cfg = scale.training_config()
        assert isinstance(cfg, TrainingConfig)
        assert cfg.epochs == 5 and cfg.batch_size == 8 and cfg.seed == scale.seed
        cfg2 = scale.training_config(recovery="epoch", ttl=2.0)
        assert cfg2.recovery == "epoch" and cfg2.ttl == 2.0
        assert cfg2.epochs == 5  # base fields still applied
