"""Tests for JSON export of experiment results."""

import dataclasses
import json

import numpy as np
import pytest

from repro.experiments import ExperimentScale, run_fig6b, run_table1
from repro.experiments.export import export_results, jsonable, load_results


class TestJsonable:
    def test_primitives_pass_through(self):
        for v in (None, True, 3, 2.5, "s"):
            assert jsonable(v) == v

    def test_numpy_scalars_and_arrays(self):
        assert jsonable(np.int64(7)) == 7
        assert jsonable(np.float32(1.5)) == pytest.approx(1.5)
        assert jsonable(np.array([1, 2, 3])) == [1, 2, 3]

    def test_dataclass_nested(self):
        @dataclasses.dataclass(frozen=True)
        class Inner:
            x: int

        @dataclasses.dataclass
        class Outer:
            name: str
            inner: Inner
            values: np.ndarray

        out = jsonable(Outer(name="o", inner=Inner(x=1), values=np.arange(2)))
        assert out == {"name": "o", "inner": {"x": 1}, "values": [0, 1]}

    def test_non_string_dict_keys(self):
        assert jsonable({64: "a", (1, 2): "b"}) == {"64": "a", "(1, 2)": "b"}

    def test_sets_and_tuples(self):
        assert sorted(jsonable({3, 1})) == [1, 3]
        assert jsonable((1, 2)) == [1, 2]

    def test_exotic_falls_back_to_str(self):
        class Weird:
            def __str__(self):
                return "weird"

        assert jsonable(Weird()) == "weird"

    def test_real_results_serialise(self):
        doc = jsonable({"t1": run_table1(seed=1), "f6b": run_fig6b(scale=ExperimentScale.smoke())})
        json.dumps(doc)  # must not raise


class TestExportRoundTrip:
    def test_export_and_load(self, tmp_path):
        path = export_results(
            {"table1": run_table1(seed=1)}, tmp_path / "out.json", seed=1, scale="smoke"
        )
        doc = load_results(path)
        assert doc["meta"]["seed"] == 1 and doc["meta"]["scale"] == "smoke"
        assert doc["results"]["table1"]["census"]["total_failures"] == 45_556

    def test_creates_parent_dirs(self, tmp_path):
        path = export_results({}, tmp_path / "a" / "b" / "out.json")
        assert path.exists()

    def test_load_rejects_foreign_json(self, tmp_path):
        p = tmp_path / "foreign.json"
        p.write_text('{"hello": 1}')
        with pytest.raises(ValueError):
            load_results(p)
