"""Tests for the qualitative experiments: Table II, Fig 3, Fig 4."""

from repro.experiments import (
    format_fig3,
    format_fig4,
    format_table2,
    run_fig3,
    run_fig4,
    run_table2,
)


class TestTable2:
    def test_covers_paper_attributes(self):
        rows = run_table2()
        attrs = {r.attribute for r in rows}
        assert {"CPU", "GPU", "Node-local storage", "Interconnect"} <= attrs

    def test_format(self):
        text = format_table2(run_table2())
        assert "Table II" in text
        assert "PM9A3" in text and "Slingshot" in text


class TestFig3:
    def test_both_sequences_recorded(self):
        r = run_fig3(seed=1)
        assert r.pfs_redirect and r.elastic_recache

    def test_causal_order(self):
        r = run_fig3(seed=1)
        for seq in (r.pfs_redirect, r.elastic_recache):
            times = [e.t for e in seq]
            assert times == sorted(times)
            steps = [e.step for e in seq]
            # intercept precedes timeout precedes the recovery action.
            assert steps.index("intercept") < steps.index("timeout")
            assert "failure" in steps and "return" in steps

    def test_recovery_actions_differ_by_policy(self):
        r = run_fig3(seed=1)
        assert any(e.step == "redirect" for e in r.pfs_redirect)
        assert not any(e.step == "re-ring" for e in r.pfs_redirect)
        assert any(e.step == "re-ring" for e in r.elastic_recache)
        assert any(e.step == "recache" for e in r.elastic_recache)

    def test_detection_precedes_recovery(self):
        r = run_fig3(seed=1)
        for seq, action in ((r.pfs_redirect, "redirect"), (r.elastic_recache, "re-ring")):
            steps = [e.step for e in seq]
            assert steps.index("detect") < steps.index(action)

    def test_format(self):
        text = format_fig3(run_fig3(seed=1))
        assert "PFS redirection" in text and "Elastic recaching" in text
        assert "LD_PRELOAD" in text


class TestFig4:
    def test_minimal_movement_holds(self):
        r = run_fig4()
        assert r.minimal_movement()
        assert r.moved_files  # the victim owned something

    def test_positions_in_unit_interval(self):
        r = run_fig4()
        assert all(0.0 <= f.position < 1.0 for f in r.files)
        positions = [f.position for f in r.files]
        assert positions == sorted(positions)

    def test_survivor_files_unmoved(self):
        r = run_fig4()
        for f in r.files:
            if f.owner_before != r.victim:
                assert not f.moved

    def test_no_file_lands_on_victim(self):
        r = run_fig4()
        assert all(f.owner_after != r.victim for f in r.files)

    def test_custom_sizes(self):
        r = run_fig4(n_nodes=6, vnodes_per_node=20, n_files=12)
        assert r.n_nodes == 6 and len(r.files) == 12
        assert r.minimal_movement()

    def test_format(self):
        text = format_fig4(run_fig4())
        assert "Fig 4" in text and "reassigned" in text and "├ 1" in text
