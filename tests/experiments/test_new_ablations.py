"""Tests for the replication and time-limit ablation experiments."""

from repro.experiments import (
    ExperimentScale,
    format_replication_ablation,
    format_timelimit_ablation,
    run_replication_ablation,
    run_timelimit_ablation,
)

SMOKE = ExperimentScale.smoke()


class TestReplicationAblation:
    def test_replication_never_worse(self):
        r = run_replication_ablation(scale=SMOKE)
        for row in r.rows:
            assert row.replicated <= row.single_copy * 1.02
            assert row.replicated_pfs_files < row.single_pfs_files

    def test_refetches_nearly_eliminated(self):
        r = run_replication_ablation(scale=SMOKE)
        for row in r.rows:
            assert row.replicated_pfs_files <= 0.2 * max(row.single_pfs_files, 1)

    def test_format(self):
        text = format_replication_ablation(run_replication_ablation(scale=SMOKE))
        assert "Replication" in text and "PFS refetches" in text


class TestTimeLimitAblation:
    def test_violation_monotone_in_margin(self):
        r = run_timelimit_ablation(scale=SMOKE, trials=5)
        by_node: dict = {}
        for row in r.rows:
            by_node.setdefault(row.n_nodes, []).append(row)
        for rows in by_node.values():
            rows.sort(key=lambda x: x.margin_pct)
            for policy in ("FT w/ PFS", "FT w/ NVMe"):
                rates = [row.violation_rate[policy] for row in rows]
                assert rates == sorted(rates, reverse=True)

    def test_pfs_violates_at_least_as_often(self):
        r = run_timelimit_ablation(scale=SMOKE, trials=5)
        for row in r.rows:
            assert row.violation_rate["FT w/ PFS"] >= row.violation_rate["FT w/ NVMe"] - 1e-9

    def test_wide_margin_never_violates(self):
        r = run_timelimit_ablation(scale=SMOKE, trials=3, margins_pct=(10.0, 10_000.0))
        loosest = [row for row in r.rows if row.margin_pct == 10_000.0]
        for row in loosest:
            assert row.violation_rate["FT w/ PFS"] == 0.0
            assert row.violation_rate["FT w/ NVMe"] == 0.0

    def test_format(self):
        text = format_timelimit_ablation(run_timelimit_ablation(scale=SMOKE, trials=3))
        assert "Time-limit" in text and "Limit margin" in text
