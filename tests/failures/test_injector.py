"""Tests for the runtime failure injector (DES side)."""

import pytest

from repro.cluster import Cluster, SlurmController
from repro.dl import Dataset, ElasticConfig, TrainingConfig, TrainingJob
from repro.failures import FailureInjector

DS = Dataset(name="toy", n_samples=128, sample_bytes=1.0e6)
CFG = TrainingConfig(
    epochs=3,
    batch_size=8,
    ttl=0.3,
    timeout_threshold=2,
    elastic=ElasticConfig(detect_time=0.5, restart_overhead=1.0, restart_per_log2_node=0.0),
)


def build(seed=3, n=6):
    cluster = Cluster.frontier(n_nodes=n, seed=seed)
    job = TrainingJob(cluster, DS, "FT w/ NVMe", CFG)
    return cluster, SlurmController(cluster), job


class TestInjectAfterFirstEpoch:
    def test_failures_land_after_epoch_zero(self):
        cluster, slurm, job = build()
        inj = FailureInjector(slurm)
        inj.inject_after_first_epoch(job, n_failures=2)
        res = job.run()
        assert len(inj.injected) == 2
        epoch0_end = next(r.end for r in res.timeline.epochs if r.epoch == 0)
        assert all(t > epoch0_end for t, _ in inj.injected)

    def test_distinct_victims(self):
        cluster, slurm, job = build()
        inj = FailureInjector(slurm)
        inj.inject_after_first_epoch(job, n_failures=3)
        job.run()
        victims = [v for _, v in inj.injected]
        assert len(set(victims)) == len(victims)

    def test_never_kills_last_node(self):
        cluster, slurm, job = build(n=2)
        inj = FailureInjector(slurm)
        inj.inject_after_first_epoch(job, n_failures=2)
        job.run()
        assert len(cluster.alive_nodes) >= 1

    def test_invalid_count(self):
        _, slurm, job = build()
        inj = FailureInjector(slurm)
        with pytest.raises(ValueError):
            inj.inject_after_first_epoch(job, n_failures=0)

    def test_reproducible_given_seed(self):
        def victims(seed):
            cluster, slurm, job = build(seed=seed)
            inj = FailureInjector(slurm)
            inj.inject_after_first_epoch(job, n_failures=2)
            job.run()
            return [v for _, v in inj.injected]

        assert victims(11) == victims(11)


class TestInjectInEpoch:
    def test_victim_epoch_is_requested_one(self):
        cluster, slurm, job = build()
        inj = FailureInjector(slurm)
        inj.inject_in_epoch(job, epoch=1, fraction=0.5)
        res = job.run()
        assert len(inj.injected) == 1
        assert res.timeline.failures[0].epoch == 1

    def test_validation(self):
        _, slurm, job = build()
        inj = FailureInjector(slurm)
        with pytest.raises(ValueError):
            inj.inject_in_epoch(job, epoch=0)
        with pytest.raises(ValueError):
            inj.inject_in_epoch(job, epoch=1, fraction=1.5)
