"""Tests for the exponential reliability model."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.failures import ReliabilityModel, fit_from_log, generate_frontier_log


class TestReliabilityModel:
    def test_validation(self):
        with pytest.raises(ValueError):
            ReliabilityModel(node_mtbf_min=0)
        m = ReliabilityModel(node_mtbf_min=1000.0)
        with pytest.raises(ValueError):
            m.failure_rate(0)
        with pytest.raises(ValueError):
            m.p_failure(4, -1.0)

    def test_p_failure_basics(self):
        m = ReliabilityModel(node_mtbf_min=1000.0)
        assert m.p_failure(1, 0.0) == 0.0
        assert m.p_failure(1, 1e9) == pytest.approx(1.0)
        # one node, one MTBF → 1 - 1/e
        assert m.p_failure(1, 1000.0) == pytest.approx(1 - np.exp(-1))

    def test_more_nodes_more_risk(self):
        m = ReliabilityModel(node_mtbf_min=10_000.0)
        probs = [m.p_failure(n, 120.0) for n in (64, 256, 1024)]
        assert probs == sorted(probs)
        assert probs[-1] > probs[0]

    def test_expected_failures_linear(self):
        m = ReliabilityModel(node_mtbf_min=1000.0)
        assert m.expected_failures(10, 50.0) == pytest.approx(0.5)
        assert m.expected_failures(20, 50.0) == pytest.approx(1.0)

    def test_mean_time_to_first_failure(self):
        m = ReliabilityModel(node_mtbf_min=1000.0)
        assert m.mean_time_to_first_failure(10) == pytest.approx(100.0)

    def test_ft_always_beats_restart_from_scratch(self):
        m = ReliabilityModel(node_mtbf_min=5000.0)
        ft = m.expected_completion_time(512, 300.0, restart_cost_min=5.0, fault_tolerant=True)
        noft = m.expected_completion_time(512, 300.0, restart_cost_min=5.0, fault_tolerant=False)
        assert ft < noft

    def test_noft_explodes_for_long_jobs(self):
        m = ReliabilityModel(node_mtbf_min=100.0)
        assert m.expected_completion_time(1000, 10_000.0, 1.0, fault_tolerant=False) == float("inf")

    @settings(max_examples=25, deadline=None)
    @given(
        mtbf=st.floats(min_value=100.0, max_value=1e7),
        n=st.integers(min_value=1, max_value=4096),
        t=st.floats(min_value=0.0, max_value=1e4),
    )
    def test_probability_bounds_property(self, mtbf, n, t):
        p = ReliabilityModel(mtbf).p_failure(n, t)
        assert 0.0 <= p <= 1.0


class TestFitFromLog:
    def test_fit_round_numbers(self):
        log = generate_frontier_log(seed=1)
        m = fit_from_log(log)
        # 1,174 node failures over 27 weeks on 9,408 nodes → MTBF ≈ 4.2 years.
        expected = 9408 * 27 * 7 * 24 * 60 / 1174
        assert m.node_mtbf_min == pytest.approx(expected)

    def test_validation(self):
        log = generate_frontier_log(seed=1)
        with pytest.raises(ValueError):
            fit_from_log(log, total_nodes=0)
        with pytest.raises(ValueError):
            fit_from_log(log, weeks=0)

    def test_frontier_scale_risk_is_material(self):
        # The Section III takeaway: at full-machine scale over a long job,
        # failure probability is no longer negligible.
        m = fit_from_log(generate_frontier_log(seed=1))
        assert m.p_failure(9408, 24 * 60) > 0.3
