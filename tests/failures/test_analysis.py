"""Tests for the Section III job-failure analysis."""

import numpy as np
import pytest

from repro.failures import (
    JobState,
    SlurmLog,
    combined_node_failure_share,
    distribution_by_elapsed,
    distribution_by_nodes,
    failure_census,
    generate_frontier_log,
    weekly_elapsed,
)


@pytest.fixture(scope="module")
def log():
    return generate_frontier_log(seed=2024)


class TestCensus:
    def test_matches_published_table1(self, log):
        c = failure_census(log)
        assert c.total_jobs == 181_933
        assert c.total_failures == 45_556
        assert c.failure_ratio["NODE_FAIL"] == pytest.approx(2.58, abs=0.01)
        assert c.failure_ratio["TIMEOUT"] == pytest.approx(44.92, abs=0.01)
        assert c.failure_ratio["JOB_FAIL"] == pytest.approx(52.50, abs=0.01)
        assert c.overall_ratio["FAILURES"] == pytest.approx(25.04, abs=0.01)

    def test_combined_node_failure_about_half(self, log):
        share = combined_node_failure_share(failure_census(log))
        assert share == pytest.approx(47.5, abs=0.2)

    def test_empty_log_census(self):
        empty = SlurmLog(
            state=np.zeros(0, dtype=np.int8),
            n_nodes=np.zeros(0, dtype=np.int32),
            elapsed_min=np.zeros(0),
            week=np.zeros(0, dtype=np.int16),
        )
        c = failure_census(empty)
        assert c.total_failures == 0
        assert combined_node_failure_share(c) == 0.0
        assert c.failure_ratio["NODE_FAIL"] == 0.0


class TestWeekly:
    def test_covers_all_weeks(self, log):
        w = weekly_elapsed(log)
        assert len(w.weeks) == 27
        for series in w.by_type.values():
            assert len(series) == 27

    def test_overall_near_published_mean(self, log):
        w = weekly_elapsed(log)
        assert 60 < w.overall < 95  # "an average of 75 minutes"

    def test_hardware_failures_spike_somewhere(self, log):
        w = weekly_elapsed(log)
        hw_max = np.nanmax(np.vstack([w.by_type["NODE_FAIL"], w.by_type["TIMEOUT"]]))
        assert hw_max > 120  # 2h+ weeks exist (Fig 1)

    def test_every_week_has_failures(self, log):
        w = weekly_elapsed(log)
        jf = w.by_type["JOB_FAIL"]
        assert not np.isnan(jf).any()


class TestDistributionByNodes:
    def test_shares_sum_to_100_in_populated_buckets(self, log):
        for b in distribution_by_nodes(log):
            if b.n_failures:
                assert sum(b.share.values()) == pytest.approx(100.0)

    def test_node_fail_share_rises_with_size(self, log):
        buckets = [b for b in distribution_by_nodes(log) if b.n_failures >= 50]
        shares = [b.share["NODE_FAIL"] for b in buckets]
        slope = np.polyfit(np.arange(len(shares)), shares, 1)[0]
        assert slope > 0  # Fig 2a trend

    def test_top_bucket_matches_paper_ballpark(self, log):
        buckets = [b for b in distribution_by_nodes(log) if b.n_failures > 0]
        top = buckets[-1]
        # Paper: NODE_FAIL 46.04%, NODE_FAIL+TIMEOUT 78.60% in 7750-9300.
        assert top.share["NODE_FAIL"] > 30
        assert top.node_fail_plus_timeout > 62

    def test_bucket_labels(self, log):
        b0 = distribution_by_nodes(log)[0]
        assert b0.label == "1-1550"


class TestDistributionByElapsed:
    def test_mix_roughly_flat(self, log):
        populated = [b for b in distribution_by_elapsed(log) if b.n_failures >= 1000]
        for t in ("JOB_FAIL", "TIMEOUT"):
            vals = [b.share[t] for b in populated]
            assert max(vals) - min(vals) < 15  # Fig 2b: no strong dependence

    def test_custom_edges(self, log):
        buckets = distribution_by_elapsed(log, edges_min=[0, 60, float("inf")])
        assert len(buckets) == 2
        assert buckets[1].label == ">60 min"
        assert sum(b.n_failures for b in buckets) == failure_census(log).total_failures
