"""Tests for the synthetic Frontier SLURM log generator."""

import numpy as np
import pytest

from repro.failures import FrontierLogModel, JobState, SlurmLog, generate_frontier_log


class TestGeneration:
    def test_exact_table1_counts(self):
        log = generate_frontier_log(seed=1)
        m = FrontierLogModel()
        assert len(log) == m.total_jobs
        assert log.count(JobState.NODE_FAIL) == m.node_fail
        assert log.count(JobState.TIMEOUT) == m.timeout
        assert log.count(JobState.JOB_FAIL) == m.job_fail
        assert log.count(JobState.CANCELLED) == m.cancelled

    def test_reproducible(self):
        a = generate_frontier_log(seed=7)
        b = generate_frontier_log(seed=7)
        np.testing.assert_array_equal(a.state, b.state)
        np.testing.assert_array_equal(a.n_nodes, b.n_nodes)
        np.testing.assert_array_equal(a.elapsed_min, b.elapsed_min)

    def test_seed_sensitivity(self):
        a = generate_frontier_log(seed=1)
        b = generate_frontier_log(seed=2)
        assert not np.array_equal(a.elapsed_min, b.elapsed_min)

    def test_custom_model(self):
        m = FrontierLogModel(total_jobs=1000, job_fail=100, timeout=50, node_fail=10, cancelled=40)
        log = generate_frontier_log(seed=0, model=m)
        assert len(log) == 1000
        assert log.count(JobState.COMPLETED) == 800

    def test_invalid_model_rejected(self):
        m = FrontierLogModel(total_jobs=10, job_fail=100, timeout=0, node_fail=0, cancelled=0)
        with pytest.raises(ValueError):
            generate_frontier_log(model=m)

    def test_node_counts_in_range(self):
        log = generate_frontier_log(seed=1)
        assert log.n_nodes.min() >= 1
        assert log.n_nodes.max() <= 9300

    def test_weeks_cover_27(self):
        log = generate_frontier_log(seed=1)
        assert set(np.unique(log.week)) == set(range(27))

    def test_elapsed_positive(self):
        log = generate_frontier_log(seed=1)
        assert (log.elapsed_min > 0).all()

    def test_rows_shuffled_not_state_sorted(self):
        log = generate_frontier_log(seed=1)
        # If sorted by state the first 100k rows would all be one value.
        assert len(np.unique(log.state[:1000])) > 1

    def test_mean_failure_elapsed_near_75(self):
        log = generate_frontier_log(seed=1)
        mean = log.elapsed_min[log.failures_mask].mean()
        assert 60 < mean < 95


class TestSlurmLogContainer:
    def test_column_length_validation(self):
        with pytest.raises(ValueError):
            SlurmLog(
                state=np.zeros(3, dtype=np.int8),
                n_nodes=np.ones(2, dtype=np.int32),
                elapsed_min=np.ones(3),
                week=np.zeros(3, dtype=np.int16),
            )

    def test_failures_mask(self):
        log = SlurmLog(
            state=np.array([0, 1, 2, 3, 4], dtype=np.int8),
            n_nodes=np.ones(5, dtype=np.int32),
            elapsed_min=np.ones(5),
            week=np.zeros(5, dtype=np.int16),
        )
        np.testing.assert_array_equal(log.failures_mask, [False, True, True, True, False])

    def test_node_bucket_edges(self):
        log = SlurmLog(
            state=np.zeros(4, dtype=np.int8),
            n_nodes=np.array([1, 1550, 1551, 9300], dtype=np.int32),
            elapsed_min=np.ones(4),
            week=np.zeros(4, dtype=np.int16),
        )
        np.testing.assert_array_equal(log.node_bucket(), [0, 0, 1, 5])
