"""Tests for SlurmLog CSV interchange."""

import numpy as np
import pytest

from repro.failures import FrontierLogModel, SlurmLog, generate_frontier_log


@pytest.fixture
def small_log():
    model = FrontierLogModel(total_jobs=300, job_fail=40, timeout=30, node_fail=5, cancelled=25)
    return generate_frontier_log(seed=9, model=model)


class TestCsvRoundTrip:
    def test_lossless(self, small_log, tmp_path):
        p = tmp_path / "log.csv"
        small_log.to_csv(p)
        back = SlurmLog.from_csv(p)
        np.testing.assert_array_equal(small_log.state, back.state)
        np.testing.assert_array_equal(small_log.n_nodes, back.n_nodes)
        np.testing.assert_array_equal(small_log.week, back.week)
        np.testing.assert_allclose(small_log.elapsed_min, back.elapsed_min, atol=1e-3)

    def test_analysis_identical_after_round_trip(self, small_log, tmp_path):
        from repro.failures import failure_census

        p = tmp_path / "log.csv"
        small_log.to_csv(p)
        back = SlurmLog.from_csv(p)
        assert failure_census(back) == failure_census(small_log)

    def test_header_written(self, small_log, tmp_path):
        p = tmp_path / "log.csv"
        small_log.to_csv(p)
        assert p.read_text().splitlines()[0] == "state,n_nodes,elapsed_min,week"


class TestCsvValidation:
    def test_bad_header(self, tmp_path):
        p = tmp_path / "bad.csv"
        p.write_text("wrong,header\n")
        with pytest.raises(ValueError, match="header"):
            SlurmLog.from_csv(p)

    def test_bad_field_count(self, tmp_path):
        p = tmp_path / "bad.csv"
        p.write_text("state,n_nodes,elapsed_min,week\nCOMPLETED,1,2.0\n")
        with pytest.raises(ValueError, match="4 fields"):
            SlurmLog.from_csv(p)

    def test_unknown_state(self, tmp_path):
        p = tmp_path / "bad.csv"
        p.write_text("state,n_nodes,elapsed_min,week\nEXPLODED,1,2.0,0\n")
        with pytest.raises(ValueError, match="unknown state"):
            SlurmLog.from_csv(p)

    def test_blank_lines_skipped(self, tmp_path):
        p = tmp_path / "ok.csv"
        p.write_text("state,n_nodes,elapsed_min,week\nCOMPLETED,4,12.5,3\n\n")
        log = SlurmLog.from_csv(p)
        assert len(log) == 1 and log.n_nodes[0] == 4
