"""Trace context: id generation, header round trip, contextvar mirror."""

import logging

from repro.obs import (
    TraceContext,
    configure_logging,
    current_trace_id,
    extract,
    inject,
    new_span_id,
    new_trace_id,
    node_logger,
)
from repro.obs.spans import Tracer


class TestIds:
    def test_shapes(self):
        assert len(new_trace_id()) == 16
        assert len(new_span_id()) == 8
        int(new_trace_id(), 16)  # hex

    def test_root_and_child(self):
        root = TraceContext.root()
        assert root.parent_id is None
        child = root.child()
        assert child.trace_id == root.trace_id
        assert child.parent_id == root.span_id
        assert child.span_id != root.span_id


class TestHeaderRoundTrip:
    def test_inject_extract(self):
        ctx = TraceContext.root()
        header = {"op": "READ", "path": "/x"}
        assert inject(header, ctx) is header
        got = extract(header)
        assert got == TraceContext(trace_id=ctx.trace_id, span_id=ctx.span_id)

    def test_untraced_header_extracts_none(self):
        assert extract({}) is None
        assert extract({"op": "READ"}) is None

    def test_garbage_header_extracts_none(self):
        assert extract({"trace_id": 17, "span_id": "abcd1234"}) is None
        assert extract({"trace_id": "abc", "span_id": None}) is None


class TestContextvarMirror:
    def test_active_span_sets_current_trace_id(self):
        tracer = Tracer(node="t")
        assert current_trace_id() is None
        with tracer.start_trace("op") as span:
            assert current_trace_id() == span.ctx.trace_id
        assert current_trace_id() is None

    def test_log_lines_carry_node_and_trace(self, capsys):
        import io

        stream = io.StringIO()
        configure_logging("info", stream=stream)
        try:
            log = node_logger("repro.test", node_id=7)
            tracer = Tracer(node="t")
            with tracer.start_trace("op") as span:
                log.info("inside")
            log.info("outside")
            out = stream.getvalue()
            assert f"[node=7 trace={span.ctx.trace_id}]" in out
            assert "[node=7 trace=-]" in out
        finally:
            # back to quiet-by-default for the rest of the suite
            root = logging.getLogger("repro")
            for h in list(root.handlers):
                if not isinstance(h, logging.NullHandler):
                    root.removeHandler(h)
            root.setLevel(logging.NOTSET)
