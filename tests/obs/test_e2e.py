"""End-to-end tracing over real sockets: propagation, failover, warmup.

These are the trace-propagation invariants the tentpole promises:

* a traced ``client.read`` stitches into one tree spanning the client
  process-side and the owning server (cross-node exemplar);
* span balance holds for every component tracer after quiescence;
* a kill→restart failover keeps the trace intact — the timed-out RPC
  span and the successful re-route live under the same root;
* a live ``join_server`` warmup roots one trace per moved key that spans
  the control client, the source owner, and the joining node;
* ``OP_OBS`` exports the unified snapshot without disturbing RPC
  conformance; tracing disabled injects no headers and records nothing.
"""

import time

import pytest

from repro.loadgen import DriverConfig, PhaseSpec, Scenario, Workload, WorkloadSpec
from repro.obs import build_traces, get_event_log
from repro.obs.analysis import coverage_quantile, slowest_traces
from repro.runtime import LocalCluster


@pytest.fixture
def traced_cluster():
    with LocalCluster(
        n_servers=3, policy="elastic", ttl=0.3, timeout_threshold=2,
        trace_sample_rate=1.0, trace_seed=9,
    ) as c:
        c.populate(n_files=18, file_bytes=1024, seed=5)
        yield c


def _all_spans(cluster):
    spans = []
    for s in cluster.servers.values():
        spans.extend(s.tracer.buffer.snapshot())
    for c in cluster._clients:
        spans.extend(c.tracer.buffer.snapshot())
    spans.extend(cluster.control_spans.snapshot())
    return spans


class TestCrossNodeStitching:
    def test_read_trace_spans_client_and_server(self, traced_cluster):
        client = traced_cluster.client()
        for p in traced_cluster.paths[:6]:
            client.read(p)
        traces = build_traces(_all_spans(traced_cluster))
        stitched = 0
        for roots in traces.values():
            for root in roots:
                if root.name != "client.read":
                    continue
                nodes = set()

                def _walk(n):
                    nodes.add(str(n.node))
                    for c in n.children:
                        _walk(c)

                _walk(root)
                if len(nodes) >= 2:  # client-N plus a server id
                    stitched += 1
        assert stitched >= 6

    def test_span_balance_after_quiescence(self, traced_cluster):
        client = traced_cluster.client()
        for p in traced_cluster.paths:
            client.read(p)
        time.sleep(0.3)  # let movers drain their queue-wait/write spans
        assert client.tracer.in_flight == 0
        for server in traced_cluster.servers.values():
            assert server.tracer.in_flight == 0

    def test_recache_spans_reach_the_mover(self, traced_cluster):
        client = traced_cluster.client()
        for p in traced_cluster.paths[:4]:
            client.read(p)  # miss → PFS → mover recache
        time.sleep(0.3)
        names = {s["name"] for s in _all_spans(traced_cluster)}
        assert {"mover.queue_wait", "mover.nvme_write", "server.pfs_read"} <= names


class TestFailoverTracing:
    def test_trace_survives_kill_and_restart(self, traced_cluster):
        client = traced_cluster.client()
        path = traced_cluster.paths[0]
        client.read(path)
        victim = traced_cluster.owner_of(path, client.policy)
        traced_cluster.kill_server(victim)
        client.read(path)  # timeout → declare → re-route, all in one trace
        spans = [s for s in client.tracer.buffer.snapshot() if s["name"] == "client.rpc_read"]
        assert any(s["status"] == "timeout" for s in spans)
        traces = build_traces(client.tracer.buffer.snapshot())
        # the failed RPC and the declaring read share a trace
        for roots in traces.values():
            for root in roots:
                if root.name == "client.read" and any(
                    c.span["status"] == "timeout" for c in root.children
                ):
                    assert root.span["status"] in ("ok", "error")
                    break
        traced_cluster.restart_server(victim, notify_clients=[client])
        client.read(path)
        restarted_spans = traced_cluster.servers[victim].tracer.buffer.snapshot()
        # the fresh server instance participates in post-restart traces
        assert any(s["name"].startswith("server.") for s in restarted_spans)
        kinds = {e["kind"] for e in get_event_log().snapshot()}
        assert {"node_killed", "death_declared", "node_restarted"} <= kinds


class TestJoinWarmupTracing:
    def test_warm_key_traces_span_three_processes(self, traced_cluster):
        client = traced_cluster.client()
        for p in traced_cluster.paths:
            client.read(p)
        time.sleep(0.2)
        report = traced_cluster.join_server(weight=1.0)
        assert report.warmed_keys > 0
        traces = build_traces(_all_spans(traced_cluster))
        warm_roots = [
            r for roots in traces.values() for r in roots if r.name == "join.warm_key"
        ]
        assert warm_roots, "no warmup traces recorded"
        crossed = 0
        for root in warm_roots:
            nodes = set()

            def _walk(n):
                nodes.add(str(n.node))
                for c in n.children:
                    _walk(c)

            _walk(root)
            if len(nodes) >= 2:  # control plus at least one server
                crossed += 1
        assert crossed > 0
        kinds = [e["to_state"] for e in get_event_log().snapshot(kind="join_state")]
        assert kinds == ["WARMING", "SERVING"]


class TestObsExport:
    def test_obs_snapshot_round_trip(self, traced_cluster):
        client = traced_cluster.client()
        client.read(traced_cluster.paths[0])
        node = traced_cluster.owner_of(traced_cluster.paths[0], client.policy)
        snap = client.obs_snapshot(node)
        assert snap is not None
        assert snap["node"] == node
        assert "hits" in snap["counter_groups"]["server"]
        assert "mover_queue_len" in snap["gauges"]
        assert snap["tracer"]["spans_started"] >= snap["tracer"]["spans_closed"] >= 1
        assert any(s["name"] == "server.read" for s in snap["spans"])
        assert "op_read_s" in snap["histograms"]

    def test_obs_snapshot_none_for_dead_node(self, traced_cluster):
        client = traced_cluster.client()
        traced_cluster.kill_server(0)
        assert client.obs_snapshot(0) is None

    def test_disabled_tracing_records_nothing_and_injects_nothing(self):
        with LocalCluster(n_servers=2, policy="elastic", ttl=0.5) as cluster:
            cluster.populate(n_files=4, file_bytes=512, seed=3)
            client = cluster.client()
            for p in cluster.paths:
                client.read(p)
            assert not client.tracer.enabled
            assert len(client.tracer.buffer) == 0
            # server tracers only record under an extracted remote context
            for s in cluster.servers.values():
                assert len(s.tracer.buffer) == 0


class TestScenarioObsBlock:
    def test_v4_artifact_carries_breakdown_and_exemplars(self, traced_cluster):
        workload = Workload(WorkloadSpec(n_files=18, file_bytes=1024, seed=5))
        scenario = Scenario(
            traced_cluster, workload,
            phases=[PhaseSpec(name="steady", duration=0.6,
                              driver=DriverConfig(mode="closed", workers=2))],
        )
        report = scenario.run(materialize=False)
        obs = report.to_dict()["obs"]
        assert obs["trace_sample_rate"] == 1.0
        assert obs["spans"] > 0 and obs["traces"] > 0
        assert "client.read" in obs["stage_breakdown"]
        assert "server.read" in obs["stage_breakdown"]
        assert obs["slowest_read_traces"], "no exemplar traces"
        exemplar = obs["slowest_read_traces"][0]
        assert exemplar["critical_path"][0] == "client.read"
        # the acceptance bar: stages account for >= 90% of READ latency at p50
        assert obs["coverage_p50"] >= 0.9
        assert obs["events"]["events_emitted"] >= 0

    def test_untraced_scenario_has_empty_obs_block(self):
        with LocalCluster(n_servers=1, policy="elastic") as cluster:
            cluster.populate(n_files=4, file_bytes=256, seed=2)
            workload = Workload(WorkloadSpec(n_files=4, file_bytes=256, seed=2))
            report = Scenario(
                cluster, workload,
                phases=[PhaseSpec(name="only", duration=0.3,
                                  driver=DriverConfig(workers=1))],
            ).run(materialize=False)
        assert report.to_dict()["obs"] == {}

    def test_dump_obs_round_trips_through_the_cli(self, traced_cluster, tmp_path, capsys):
        from repro.obs.__main__ import main as obs_main

        client = traced_cluster.client()
        for p in traced_cluster.paths[:5]:
            client.read(p)
        files = traced_cluster.dump_obs(tmp_path / "obs")
        assert any(f.name.startswith("spans-server-") for f in files)
        assert any(f.name.startswith("spans-client-") for f in files)
        rc = obs_main([str(tmp_path / "obs"), "--slowest", "1", "--root-name", "client.read"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "client.read" in out and "critical path:" in out
