"""Telemetry registry and the structured event log."""

import json
import threading

import pytest

from repro.obs import EventLog, Telemetry, get_event_log, reset_event_log


class TestTelemetry:
    def test_own_counters(self):
        t = Telemetry(node=1)
        t.inc("exported")
        t.inc("exported", 2)
        assert t.snapshot()["counters"] == {"exported": 3}

    def test_adopted_group_reads_live_store(self):
        t = Telemetry(node=1)
        store = {"hits": 1}
        t.adopt_counters("server", lambda: store)
        assert t.snapshot()["counter_groups"]["server"] == {"hits": 1}
        store["hits"] = 5
        assert t.snapshot()["counter_groups"]["server"] == {"hits": 5}

    def test_gauges_sampled_at_snapshot_time(self):
        t = Telemetry()
        box = {"v": 1.0}
        t.gauge("queue_len", lambda: box["v"])
        assert t.snapshot()["gauges"]["queue_len"] == 1.0
        box["v"] = 7.0
        assert t.snapshot()["gauges"]["queue_len"] == 7.0

    def test_broken_provider_reports_error_not_raise(self):
        t = Telemetry()
        t.gauge("bad", lambda: 1 / 0)
        t.adopt_counters("bad_group", lambda: (_ for _ in ()).throw(OSError("disk")))
        snap = t.snapshot()
        assert snap["gauges"]["bad"].startswith("error:")
        assert "error" in snap["counter_groups"]["bad_group"]

    def test_histograms(self):
        t = Telemetry()
        assert t.histogram("op_read_s") is None
        for v in (0.001, 0.002, 0.003):
            t.observe("op_read_s", v)
        hist = t.histogram("op_read_s")
        assert hist.count == 3
        snap = t.snapshot()
        assert snap["histograms"]["op_read_s"]["count"] == 3

    def test_snapshot_is_json_safe(self):
        t = Telemetry(node=0)
        t.inc("c")
        t.observe("h", 0.01)
        t.gauge("g", lambda: 2.5)
        json.dumps(t.snapshot())


class TestEventLog:
    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            EventLog(capacity=0)

    def test_emit_records_both_clocks(self):
        log = EventLog(node=3)
        rec = log.emit("death_declared", node=1)
        assert rec["kind"] == "death_declared"
        assert rec["t_wall"] > 0 and rec["t_mono"] > 0
        assert log.snapshot() == [rec]

    def test_drop_oldest_accounting(self):
        log = EventLog(capacity=2)
        for i in range(4):
            log.emit("eviction", i=i)
        assert [e["i"] for e in log.snapshot()] == [2, 3]
        counters = log.counters()
        assert counters["events_emitted"] == 4
        assert counters["events_dropped"] == 2

    def test_kind_filter_and_limit(self):
        log = EventLog()
        log.emit("chaos", action="kill", node=0)
        log.emit("ring_epoch", epoch=1)
        log.emit("chaos", action="restart", node=0)
        assert [e["action"] for e in log.snapshot(kind="chaos")] == ["kill", "restart"]
        assert [e["action"] for e in log.snapshot(kind="chaos", limit=1)] == ["restart"]

    def test_jsonl_sink_appends_whole_lines(self, tmp_path):
        path = tmp_path / "events" / "log.jsonl"
        log = EventLog(path=path, node=0)
        try:
            log.emit("recache_begin", path="/a", nbytes=10)
            log.emit("recache_end", path="/a", ok=True)
        finally:
            log.close_sink()
        lines = [json.loads(l) for l in path.read_text().splitlines()]
        assert [l["kind"] for l in lines] == ["recache_begin", "recache_end"]
        assert all(l["node"] == 0 for l in lines)

    def test_concurrent_emitters_never_tear_lines(self, tmp_path):
        path = tmp_path / "log.jsonl"
        log = EventLog(path=path)

        def _emit(tid):
            for i in range(100):
                log.emit("eviction", tid=tid, i=i)

        threads = [
            threading.Thread(target=_emit, args=(t,), name=f"obs-test-emit-{t}", daemon=True)
            for t in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        log.close_sink()
        lines = path.read_text().splitlines()
        assert len(lines) == 400
        for line in lines:
            json.loads(line)  # every line is one complete record


class TestGlobalLog:
    def test_get_is_a_singleton_until_reset(self):
        a = get_event_log()
        assert get_event_log() is a
        b = reset_event_log()
        assert b is not a
        assert get_event_log() is b
