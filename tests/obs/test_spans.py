"""Spans, the ring buffer, and the tracer: balance invariants included."""

import threading

import pytest

from repro.obs import NULL_SPAN, Span, SpanBuffer, Tracer
from repro.obs.context import TraceContext


class TestSpanBuffer:
    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            SpanBuffer(capacity=0)

    def test_drop_oldest_with_accounting(self):
        buf = SpanBuffer(capacity=3)
        for i in range(5):
            buf.add({"i": i})
        assert len(buf) == 3
        assert buf.spans_recorded == 5
        assert buf.spans_dropped == 2
        assert [s["i"] for s in buf.snapshot()] == [2, 3, 4]  # oldest-first

    def test_snapshot_limit_takes_most_recent(self):
        buf = SpanBuffer(capacity=8)
        for i in range(6):
            buf.add({"i": i})
        assert [s["i"] for s in buf.snapshot(limit=2)] == [4, 5]

    def test_drain_clears_but_keeps_counters(self):
        buf = SpanBuffer(capacity=2)
        for i in range(3):
            buf.add({"i": i})
        assert len(buf.drain()) == 2
        assert len(buf) == 0
        assert buf.counters()["spans_recorded"] == 3
        assert buf.counters()["spans_dropped"] == 1


class TestSpan:
    def test_end_is_idempotent(self):
        tracer = Tracer(node="n")
        span = tracer.start_trace("op")
        span.end()
        span.end(status="error")  # second call must not re-record or mutate
        spans = tracer.buffer.snapshot()
        assert len(spans) == 1
        assert spans[0]["status"] == "ok"
        assert tracer.counters()["spans_closed"] == 1

    def test_context_manager_records_error_status(self):
        tracer = Tracer(node="n")
        with pytest.raises(RuntimeError):
            with tracer.start_trace("op"):
                raise RuntimeError("boom")
        assert tracer.buffer.snapshot()[0]["status"] == "error"

    def test_record_shape(self):
        tracer = Tracer(node="srv-3")
        span = tracer.start_trace("client.read", path="/a")
        child = tracer.start_span("rpc", span, node_id=0)
        child.end()
        span.end()
        child_rec, root_rec = tracer.buffer.snapshot()
        assert root_rec["name"] == "client.read"
        assert root_rec["parent_id"] is None
        assert root_rec["attrs"] == {"path": "/a"}
        assert child_rec["trace_id"] == root_rec["trace_id"]
        assert child_rec["parent_id"] == root_rec["span_id"]
        for rec in (child_rec, root_rec):
            assert rec["node"] == "srv-3"
            assert rec["duration_s"] >= 0.0
            assert "t_wall" in rec and "t_mono" in rec

    def test_cross_thread_end_is_safe(self):
        # The mover ends queue-wait spans on a worker thread, not the
        # submitting thread; the contextvar token reset must not blow up.
        tracer = Tracer(node="n")
        span = tracer.start_trace("mover.queue_wait")
        t = threading.Thread(target=span.end, name="obs-test-end", daemon=True)
        t.start()
        t.join()
        assert tracer.buffer.snapshot()[0]["name"] == "mover.queue_wait"


class TestTracerSampling:
    def test_disabled_tracer_returns_null(self):
        tracer = Tracer(node="n", enabled=False)
        assert tracer.start_trace("op") is NULL_SPAN
        assert tracer.start_span("x", TraceContext.root()) is NULL_SPAN

    def test_zero_rate_samples_nothing(self):
        tracer = Tracer(node="n", sample_rate=0.0)
        assert all(tracer.start_trace("op") is NULL_SPAN for _ in range(20))

    def test_unsampled_trace_stays_dark_downstream(self):
        tracer = Tracer(node="n", sample_rate=0.0)
        root = tracer.start_trace("op")
        assert root.ctx is None  # nothing to inject into headers
        assert tracer.start_span("child", root) is NULL_SPAN

    def test_remote_context_always_records(self):
        # The upstream already paid the sampling coin toss: a server-side
        # tracer records every span parented under an extracted context.
        tracer = Tracer(node="srv", sample_rate=0.0)
        span = tracer.start_span("server.read", TraceContext.root())
        assert isinstance(span, Span)
        span.end()
        assert len(tracer.buffer) == 1

    def test_fractional_rate_is_seed_deterministic(self):
        picks = []
        for _ in range(2):
            tracer = Tracer(node="n", sample_rate=0.5, seed=42)
            row = []
            for _ in range(50):
                span = tracer.start_trace("op")
                row.append(span is not NULL_SPAN)
                span.end()
            picks.append(row)
        assert picks[0] == picks[1]
        assert any(picks[0]) and not all(picks[0])


class TestSpanBalance:
    """The property the whole design promises: starts == ends, parents exist."""

    def test_every_started_span_closes_exactly_once(self):
        tracer = Tracer(node="n")
        roots = [tracer.start_trace(f"op-{i}") for i in range(10)]
        children = [tracer.start_span("child", r, k=i) for i, r in enumerate(roots)]
        grandchildren = [tracer.start_span("grand", c) for c in children[:5]]
        for span in grandchildren + children + roots:
            span.end()
            span.end()  # double-close must stay a no-op
        counters = tracer.counters()
        assert counters["spans_started"] == counters["spans_closed"] == 25
        assert tracer.in_flight == 0
        assert counters["spans_recorded"] == 25
        assert counters["spans_dropped"] == 0

    def test_every_recorded_parent_exists_in_its_trace(self):
        tracer = Tracer(node="n")
        for i in range(8):
            with tracer.start_trace(f"op-{i}") as root:
                with tracer.start_span("mid", root) as mid:
                    tracer.start_span("leaf", mid).end()
        spans = tracer.buffer.snapshot()
        by_trace: dict[str, set] = {}
        for s in spans:
            by_trace.setdefault(s["trace_id"], set()).add(s["span_id"])
        for s in spans:
            if s["parent_id"] is not None:
                assert s["parent_id"] in by_trace[s["trace_id"]]

    def test_balance_holds_under_concurrency(self):
        tracer = Tracer(node="n")

        def _work():
            for i in range(50):
                with tracer.start_trace("op") as root:
                    tracer.start_span("child", root).end()

        threads = [
            threading.Thread(target=_work, name=f"obs-test-work-{i}", daemon=True)
            for i in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert tracer.in_flight == 0
        assert tracer.counters()["spans_started"] == 400
