"""Obs-suite isolation: every test gets a fresh process-global event log.

The event log is process-global on purpose (emitters live deep in the
runtime); without this reset, events from one test's cluster would leak
into the next test's assertions.
"""

import pytest

from repro.obs import reset_event_log


@pytest.fixture(autouse=True)
def fresh_event_log():
    yield reset_event_log()
    reset_event_log()
