"""Trace-tree stitching, stage breakdown, coverage, and the obs CLI."""

import json

from repro.obs.__main__ import analyse, main
from repro.obs.analysis import (
    build_traces,
    coverage,
    coverage_quantile,
    critical_path,
    load_span_files,
    render_trace,
    slowest_traces,
    stage_breakdown,
)


def _span(trace, span, parent=None, name="op", node="n", dur=0.01, t=0.0, status="ok"):
    return {
        "trace_id": trace,
        "span_id": span,
        "parent_id": parent,
        "name": name,
        "node": node,
        "t_wall": t,
        "t_mono": t,
        "duration_s": dur,
        "status": status,
    }


def _one_trace():
    """client.read on the client, rpc + server stages across two nodes."""
    return [
        _span("t1", "a", None, "client.read", "client", 0.010, t=0.0),
        _span("t1", "b", "a", "client.rpc_read", "client", 0.009, t=0.001),
        _span("t1", "c", "b", "server.read", "0", 0.005, t=0.002),
        _span("t1", "d", "c", "server.nvme_read", "0", 0.004, t=0.003),
        _span("t1", "e", "b", "server.serialize", "0", 0.001, t=0.007),
    ]


class TestBuildTraces:
    def test_stitches_parent_child_across_nodes(self):
        traces = build_traces(_one_trace())
        (root,) = traces["t1"]
        assert root.name == "client.read"
        (rpc,) = root.children
        assert [c.name for c in rpc.children] == ["server.read", "server.serialize"]
        assert rpc.children[0].children[0].name == "server.nvme_read"

    def test_orphans_surface_as_extra_roots(self):
        spans = [
            _span("t1", "a", None, "client.read"),
            _span("t1", "z", "missing", "server.read", t=1.0),
        ]
        roots = build_traces(spans)["t1"]
        assert [r.name for r in roots] == ["client.read", "server.read"]

    def test_children_sorted_by_wall_time(self):
        spans = [
            _span("t1", "a", None, "root"),
            _span("t1", "c", "a", "late", t=2.0),
            _span("t1", "b", "a", "early", t=1.0),
        ]
        (root,) = build_traces(spans)["t1"]
        assert [c.name for c in root.children] == ["early", "late"]


class TestSummaries:
    def test_stage_breakdown(self):
        table = stage_breakdown(_one_trace())
        assert table["server.nvme_read"]["count"] == 1
        assert table["client.read"]["total_s"] == 0.010
        assert table["client.read"]["p50_s"] <= table["client.read"]["max_s"]

    def test_slowest_traces_filter_by_root_name(self):
        spans = _one_trace() + [
            _span("t2", "x", None, "client.read", dur=0.5),
            _span("t3", "y", None, "client.write", dur=9.9),
        ]
        slow = slowest_traces(build_traces(spans), n=5, root_name="client.read")
        assert [r.trace_id for r in slow] == ["t2", "t1"]

    def test_critical_path_follows_largest_child(self):
        (root,) = build_traces(_one_trace())["t1"]
        assert [n.name for n in critical_path(root)] == [
            "client.read", "client.rpc_read", "server.read", "server.nvme_read",
        ]

    def test_coverage(self):
        (root,) = build_traces(_one_trace())["t1"]
        assert coverage(root) == 0.009 / 0.010
        traces = build_traces(_one_trace())
        assert coverage_quantile(traces, 0.5) == 0.009 / 0.010
        assert coverage_quantile({}, 0.5) is None

    def test_render_trace_marks_non_ok_status(self):
        spans = [
            _span("t1", "a", None, "client.read"),
            _span("t1", "b", "a", "client.rpc_read", status="timeout"),
        ]
        (root,) = build_traces(spans)["t1"]
        text = "\n".join(render_trace(root))
        assert "trace t1" in text and "[timeout]" in text


class TestLoadAndCli:
    def _dump(self, tmp_path):
        f = tmp_path / "spans-x.jsonl"
        f.write_text(
            "\n".join(json.dumps(s) for s in _one_trace())
            + "\nnot json\n"
            + json.dumps({"no": "ids"})
            + "\n"
        )
        return f

    def test_load_span_files_skips_garbage(self, tmp_path):
        f = self._dump(tmp_path)
        assert len(load_span_files([f])) == 5
        assert len(load_span_files([tmp_path])) == 5  # directory glob
        assert load_span_files([tmp_path / "nope.jsonl"]) == []

    def test_analyse_shape(self, tmp_path):
        report = analyse([str(self._dump(tmp_path))], slowest=1, root_name="client.read")
        assert report["spans"] == 5 and report["traces"] == 1
        assert report["coverage_p50"] == 0.009 / 0.010
        (ex,) = report["slowest"]
        assert ex["trace_id"] == "t1"
        assert [n["name"] for n in ex["critical_path"]][-1] == "server.nvme_read"
        json.dumps(report)

    def test_cli_renders_and_writes_json(self, tmp_path, capsys):
        f = self._dump(tmp_path)
        out = tmp_path / "analysis.json"
        rc = main([str(f), "--slowest", "1", "--json", str(out)])
        assert rc == 0
        printed = capsys.readouterr().out
        assert "5 spans, 1 traces" in printed
        assert "server.nvme_read" in printed
        assert "critical path:" in printed
        assert json.loads(out.read_text())["spans"] == 5

    def test_cli_fails_without_spans(self, tmp_path, capsys):
        assert main([str(tmp_path)]) == 1
        assert "no spans" in capsys.readouterr().err
