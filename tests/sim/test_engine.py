"""Unit tests for the discrete-event simulation kernel."""

import pytest

from repro.sim import (
    AllOf,
    AnyOf,
    Environment,
    Event,
    Interrupt,
    SimulationError,
    Timeout,
)
from tests.conftest import run_proc


class TestEventBasics:
    def test_succeed_carries_value(self, env):
        evt = env.event()
        evt.succeed(42)
        env.run()
        assert evt.processed and evt.ok and evt.value == 42

    def test_double_succeed_rejected(self, env):
        evt = env.event()
        evt.succeed(1)
        with pytest.raises(SimulationError):
            evt.succeed(2)

    def test_fail_requires_exception(self, env):
        evt = env.event()
        with pytest.raises(TypeError):
            evt.fail("not an exception")

    def test_value_before_trigger_raises(self, env):
        evt = env.event()
        with pytest.raises(SimulationError):
            _ = evt.value

    def test_failed_event_defused_does_not_crash_run(self, env):
        evt = env.event()
        evt.fail(RuntimeError("boom"))
        evt.defuse()
        env.run()  # must not raise

    def test_failed_event_undefused_crashes_run(self, env):
        evt = env.event()
        evt.fail(RuntimeError("boom"))
        with pytest.raises(RuntimeError, match="boom"):
            env.run()


class TestTimeout:
    def test_advances_clock(self, env):
        def proc():
            yield env.timeout(2.5)
            return env.now

        assert run_proc(env, proc()) == 2.5

    def test_negative_delay_rejected(self, env):
        with pytest.raises(SimulationError):
            env.timeout(-1.0)

    def test_zero_delay_fires_at_now(self, env):
        def proc():
            yield env.timeout(0)
            return env.now

        assert run_proc(env, proc()) == 0.0

    def test_timeout_value_passthrough(self, env):
        def proc():
            got = yield env.timeout(1.0, value="payload")
            return got

        assert run_proc(env, proc()) == "payload"

    def test_timeouts_fire_in_time_order(self, env):
        order = []
        for delay in (3.0, 1.0, 2.0):
            t = env.timeout(delay)
            t.callbacks.append(lambda e, d=delay: order.append(d))
        env.run()
        assert order == [1.0, 2.0, 3.0]

    def test_same_time_fifo_order(self, env):
        order = []
        for i in range(5):
            t = env.timeout(1.0)
            t.callbacks.append(lambda e, i=i: order.append(i))
        env.run()
        assert order == [0, 1, 2, 3, 4]


class TestProcess:
    def test_return_value(self, env):
        def proc():
            yield env.timeout(1)
            return "done"

        assert run_proc(env, proc()) == "done"

    def test_non_generator_rejected(self, env):
        with pytest.raises(SimulationError):
            env.process(lambda: None)  # type: ignore[arg-type]

    def test_process_is_event_waitable(self, env):
        def child():
            yield env.timeout(2)
            return 7

        def parent():
            value = yield env.process(child())
            return (value, env.now)

        assert run_proc(env, parent()) == (7, 2.0)

    def test_exception_propagates_to_waiter(self, env):
        def child():
            yield env.timeout(1)
            raise ValueError("child died")

        def parent():
            try:
                yield env.process(child())
            except ValueError as exc:
                return str(exc)

        assert run_proc(env, parent()) == "child died"

    def test_unwaited_process_exception_crashes_run(self, env):
        def child():
            yield env.timeout(1)
            raise ValueError("unhandled")

        env.process(child())
        with pytest.raises(ValueError, match="unhandled"):
            env.run()

    def test_yield_already_processed_event_resumes(self, env):
        evt = env.event()
        evt.succeed("cached")

        def proc():
            yield env.timeout(5)  # evt is long processed by now
            got = yield evt
            return (got, env.now)

        assert run_proc(env, proc()) == ("cached", 5.0)

    def test_yield_foreign_event_rejected(self, env):
        other = Environment()
        foreign = other.event()

        def proc():
            yield foreign

        env.process(proc())
        with pytest.raises(SimulationError):
            env.run()

    def test_sequential_processes_share_clock(self, env):
        log = []

        def a():
            yield env.timeout(1)
            log.append(("a", env.now))

        def b():
            yield env.timeout(2)
            log.append(("b", env.now))

        env.process(a())
        env.process(b())
        env.run()
        assert log == [("a", 1.0), ("b", 2.0)]


class TestInterrupt:
    def test_interrupt_caught_in_process(self, env):
        def victim():
            try:
                yield env.timeout(100)
            except Interrupt as intr:
                return ("interrupted", intr.cause, env.now)

        proc = env.process(victim())

        def killer():
            yield env.timeout(3)
            proc.interrupt("because")

        env.process(killer())
        env.run()
        assert proc.value == ("interrupted", "because", 3.0)

    def test_interrupt_finished_process_rejected(self, env):
        def quick():
            yield env.timeout(1)

        proc = env.process(quick())
        env.run()
        with pytest.raises(SimulationError):
            proc.interrupt()

    def test_interrupted_process_can_continue(self, env):
        def victim():
            try:
                yield env.timeout(100)
            except Interrupt:
                pass
            yield env.timeout(5)
            return env.now

        proc = env.process(victim())

        def killer():
            yield env.timeout(2)
            proc.interrupt()

        env.process(killer())
        env.run()
        assert proc.value == 7.0

    def test_uncaught_interrupt_fails_process(self, env):
        def victim():
            yield env.timeout(100)

        proc = env.process(victim())

        def killer():
            yield env.timeout(1)
            proc.interrupt()

        def waiter():
            try:
                yield proc
            except Interrupt:
                return "saw it"

        env.process(killer())
        w = env.process(waiter())
        env.run()
        assert w.value == "saw it"


class TestConditions:
    def test_any_of_first_wins(self, env):
        def proc():
            fast = env.timeout(1, value="fast")
            slow = env.timeout(5, value="slow")
            fired = yield AnyOf(env, [fast, slow])
            return (fast in fired, slow in fired, env.now)

        assert run_proc(env, proc()) == (True, False, 1.0)

    def test_all_of_waits_for_slowest(self, env):
        def proc():
            a = env.timeout(1, value="a")
            b = env.timeout(4, value="b")
            fired = yield AllOf(env, [a, b])
            return (fired[a], fired[b], env.now)

        assert run_proc(env, proc()) == ("a", "b", 4.0)

    def test_any_of_with_already_processed_member(self, env):
        evt = env.event()
        evt.succeed("early")

        def proc():
            yield env.timeout(1)
            fired = yield AnyOf(env, [evt, env.timeout(99)])
            return (evt in fired, env.now)

        assert run_proc(env, proc()) == (True, 1.0)

    def test_all_of_empty_fires_immediately(self, env):
        def proc():
            yield AllOf(env, [])
            return env.now

        assert run_proc(env, proc()) == 0.0

    def test_any_of_failure_propagates(self, env):
        def bad():
            yield env.timeout(1)
            raise RuntimeError("bad member")

        def proc():
            try:
                yield AnyOf(env, [env.process(bad()), env.timeout(50)])
            except RuntimeError as exc:
                return str(exc)

        assert run_proc(env, proc()) == "bad member"

    def test_all_of_returns_process_values(self, env):
        def worker(delay, tag):
            yield env.timeout(delay)
            return tag

        def proc():
            procs = [env.process(worker(d, t)) for d, t in ((2, "x"), (1, "y"))]
            fired = yield AllOf(env, procs)
            return [fired[p] for p in procs]

        assert run_proc(env, proc()) == ["x", "y"]

    def test_late_failure_after_anyof_won_is_absorbed(self, env):
        def bad():
            yield env.timeout(5)
            raise RuntimeError("late")

        def proc():
            yield AnyOf(env, [env.timeout(1), env.process(bad())])
            return env.now

        assert run_proc(env, proc()) == 1.0
        env.run()  # drain the late failure without crashing

    def test_nested_conditions(self, env):
        def proc():
            inner = AllOf(env, [env.timeout(1), env.timeout(2)])
            fired = yield AnyOf(env, [inner, env.timeout(10)])
            return (inner in fired, env.now)

        assert run_proc(env, proc()) == (True, 2.0)


class TestRun:
    def test_run_until_time_stops_clock(self, env):
        env.timeout(100)
        env.run(until=3.5)
        assert env.now == 3.5

    def test_run_until_past_rejected(self, env):
        env.run(until=5)
        with pytest.raises(SimulationError):
            env.run(until=1)

    def test_run_until_event_returns_value(self, env):
        def proc():
            yield env.timeout(2)
            return 99

        assert env.run(until=env.process(proc())) == 99

    def test_run_until_never_firing_event_raises(self, env):
        evt = env.event()
        env.timeout(1)
        with pytest.raises(SimulationError):
            env.run(until=evt)

    def test_peek_empty_queue_is_inf(self, env):
        assert env.peek() == float("inf")

    def test_determinism_across_instances(self):
        def scenario(e):
            log = []

            def worker(tag, delay):
                yield e.timeout(delay)
                log.append((tag, e.now))

            for i in range(10):
                e.process(worker(i, (i * 7) % 5 + 0.5))
            e.run()
            return log

        assert scenario(Environment()) == scenario(Environment())

    def test_active_process_tracking(self, env):
        seen = []

        def proc():
            seen.append(env.active_process)
            yield env.timeout(1)

        p = env.process(proc())
        env.run()
        assert seen == [p]
        assert env.active_process is None
