"""Property-based tests of the simulation kernel and fluid-flow link.

These pin the invariants everything upstream relies on: causality (the
clock never runs backwards through any callback ordering), completion
(every scheduled process finishes when nothing blocks forever), and
conservation (a fair-share link neither creates nor destroys bytes, and
is work-conserving: total time equals total bytes over rate when the link
is never idle).
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import AllOf, Environment, SharedBandwidth


class TestEngineProperties:
    @settings(max_examples=40, deadline=None)
    @given(
        delays=st.lists(
            st.floats(min_value=0.0, max_value=100.0, allow_nan=False), min_size=1, max_size=30
        )
    )
    def test_causality_over_random_timeouts(self, delays):
        env = Environment()
        observed = []
        for d in delays:
            t = env.timeout(d)
            t.callbacks.append(lambda e, d=d: observed.append(env.now))
        env.run()
        assert observed == sorted(observed)
        assert env.now == max(delays)

    @settings(max_examples=30, deadline=None)
    @given(
        chains=st.lists(
            st.lists(st.floats(min_value=0.01, max_value=5.0), min_size=1, max_size=5),
            min_size=1,
            max_size=10,
        )
    )
    def test_every_process_completes(self, chains):
        env = Environment()

        def worker(steps):
            total = 0.0
            for s in steps:
                yield env.timeout(s)
                total += s
            return total

        procs = [env.process(worker(c)) for c in chains]
        env.run()
        for proc, chain in zip(procs, chains):
            assert proc.processed
            assert proc.value == sum(chain)
        assert env.now == max(sum(c) for c in chains)

    @settings(max_examples=30, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=1000),
        n=st.integers(min_value=1, max_value=15),
    )
    def test_fork_join_determinism(self, seed, n):
        def scenario():
            env = Environment()
            rng = np.random.default_rng(seed)

            def worker(d):
                yield env.timeout(float(d))
                return float(env.now)

            def parent():
                kids = [env.process(worker(rng.integers(1, 50) / 10)) for _ in range(n)]
                done = yield AllOf(env, kids)
                return tuple(done[k] for k in kids)

            p = env.process(parent())
            env.run()
            return p.value

        assert scenario() == scenario()


class TestBandwidthConservation:
    @settings(max_examples=30, deadline=None)
    @given(
        sizes=st.lists(st.floats(min_value=0.1, max_value=1000.0), min_size=1, max_size=20),
        rate=st.floats(min_value=0.5, max_value=100.0),
    )
    def test_bytes_conserved(self, sizes, rate):
        env = Environment()
        link = SharedBandwidth(env, rate=rate)

        def proc():
            yield AllOf(env, [link.transfer(s) for s in sizes])

        env.process(proc())
        env.run()
        np.testing.assert_allclose(link.bytes_moved, sum(sizes), rtol=1e-9)
        assert link.active_transfers == 0

    @settings(max_examples=30, deadline=None)
    @given(
        sizes=st.lists(st.floats(min_value=0.1, max_value=1000.0), min_size=1, max_size=20),
        rate=st.floats(min_value=0.5, max_value=100.0),
    )
    def test_work_conserving_when_saturated(self, sizes, rate):
        # All transfers start at t=0, so the link is never idle: the last
        # completion lands exactly at total_bytes / rate.
        env = Environment()
        link = SharedBandwidth(env, rate=rate)

        def proc():
            yield AllOf(env, [link.transfer(s) for s in sizes])
            return env.now

        p = env.process(proc())
        env.run()
        np.testing.assert_allclose(p.value, sum(sizes) / rate, rtol=1e-6)

    @settings(max_examples=20, deadline=None)
    @given(
        arrivals=st.lists(
            st.tuples(
                st.floats(min_value=0.0, max_value=10.0),  # start
                st.floats(min_value=0.1, max_value=50.0),  # bytes
            ),
            min_size=1,
            max_size=15,
        )
    )
    def test_completion_never_before_ideal(self, arrivals):
        # No transfer can beat bytes/rate from its own start time.
        env = Environment()
        link = SharedBandwidth(env, rate=7.0)
        results = []

        def sender(start, nbytes):
            yield env.timeout(start)
            t0 = env.now
            yield link.transfer(nbytes)
            results.append((t0, env.now, nbytes))

        for start, nbytes in arrivals:
            env.process(sender(start, nbytes))
        env.run()
        for t0, t1, nbytes in results:
            assert t1 - t0 >= nbytes / 7.0 - 1e-9
