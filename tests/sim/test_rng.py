"""Tests for seeded random-stream management."""

import numpy as np

from repro.sim import RngRegistry, derive_seed


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(42, "alpha") == derive_seed(42, "alpha")

    def test_name_sensitivity(self):
        assert derive_seed(42, "alpha") != derive_seed(42, "beta")

    def test_seed_sensitivity(self):
        assert derive_seed(1, "alpha") != derive_seed(2, "alpha")

    def test_32bit_range(self):
        for seed in (0, 1, 2**31, 2**63):
            s = derive_seed(seed, "x")
            assert 0 <= s < 2**32


class TestRngRegistry:
    def test_same_name_same_stream_object(self):
        reg = RngRegistry(7)
        assert reg.stream("net") is reg.stream("net")

    def test_reproducible_across_registries(self):
        a = RngRegistry(7).stream("net").random(100)
        b = RngRegistry(7).stream("net").random(100)
        np.testing.assert_array_equal(a, b)

    def test_streams_independent(self):
        reg = RngRegistry(7)
        a = reg.stream("a").random(1000)
        b = reg.stream("b").random(1000)
        assert abs(np.corrcoef(a, b)[0, 1]) < 0.1

    def test_draw_count_isolation(self):
        """Extra draws on one stream must not perturb another."""
        reg1 = RngRegistry(3)
        reg1.stream("noisy").random(1234)  # burn
        x1 = reg1.stream("quiet").random(10)

        reg2 = RngRegistry(3)
        x2 = reg2.stream("quiet").random(10)
        np.testing.assert_array_equal(x1, x2)

    def test_fork_differs_from_parent(self):
        parent = RngRegistry(5)
        child = parent.fork("worker0")
        a = parent.stream("s").random(100)
        b = child.stream("s").random(100)
        assert not np.array_equal(a, b)

    def test_fork_deterministic(self):
        a = RngRegistry(5).fork("w").stream("s").random(10)
        b = RngRegistry(5).fork("w").stream("s").random(10)
        np.testing.assert_array_equal(a, b)
