"""Unit tests for Resource, Store, and the fluid-flow SharedBandwidth."""

import pytest

from repro.sim import AllOf, Resource, SharedBandwidth, Store
from tests.conftest import run_proc


class TestResource:
    def test_capacity_validation(self, env):
        with pytest.raises(ValueError):
            Resource(env, capacity=0)

    def test_immediate_grant_under_capacity(self, env):
        res = Resource(env, capacity=2)

        def proc():
            with res.request() as req:
                yield req
                return env.now

        assert run_proc(env, proc()) == 0.0

    def test_fifo_queueing(self, env):
        res = Resource(env, capacity=1)
        order = []

        def holder(tag, hold):
            with res.request() as req:
                yield req
                order.append((tag, env.now))
                yield env.timeout(hold)

        for i in range(3):
            env.process(holder(i, 2.0))
        env.run()
        assert order == [(0, 0.0), (1, 2.0), (2, 4.0)]

    def test_count_and_queued(self, env):
        res = Resource(env, capacity=1)

        def holder():
            with res.request() as req:
                yield req
                yield env.timeout(5)

        def observer():
            yield env.timeout(1)
            return (res.count, res.queued)

        env.process(holder())
        env.process(holder())
        obs = env.process(observer())
        env.run()
        assert obs.value == (1, 1)

    def test_release_is_idempotent(self, env):
        res = Resource(env, capacity=1)

        def proc():
            req = res.request()
            yield req
            res.release(req)
            res.release(req)  # no-op
            return res.count

        assert run_proc(env, proc()) == 0

    def test_cancel_waiting_request(self, env):
        res = Resource(env, capacity=1)

        def holder():
            with res.request() as req:
                yield req
                yield env.timeout(10)

        def canceller():
            yield env.timeout(1)
            req = res.request()
            req.cancel()
            return res.queued

        env.process(holder())
        c = env.process(canceller())
        env.run()
        assert c.value == 0


class TestStore:
    def test_put_then_get(self, env):
        store = Store(env)

        def proc():
            store.put("item")
            got = yield store.get()
            return got

        assert run_proc(env, proc()) == "item"

    def test_get_blocks_until_put(self, env):
        store = Store(env)

        def getter():
            got = yield store.get()
            return (got, env.now)

        def putter():
            yield env.timeout(3)
            store.put("late")

        g = env.process(getter())
        env.process(putter())
        env.run()
        assert g.value == ("late", 3.0)

    def test_fifo_order(self, env):
        store = Store(env)

        def proc():
            for i in range(5):
                store.put(i)
            out = []
            for _ in range(5):
                out.append((yield store.get()))
            return out

        assert run_proc(env, proc()) == [0, 1, 2, 3, 4]

    def test_bounded_capacity_blocks_put(self, env):
        store = Store(env, capacity=1)
        log = []

        def putter():
            yield store.put("a")
            log.append(("a in", env.now))
            yield store.put("b")
            log.append(("b in", env.now))

        def getter():
            yield env.timeout(2)
            yield store.get()

        env.process(putter())
        env.process(getter())
        env.run()
        assert log == [("a in", 0.0), ("b in", 2.0)]

    def test_invalid_capacity(self, env):
        with pytest.raises(ValueError):
            Store(env, capacity=0)


class TestSharedBandwidth:
    def test_single_transfer_exact_time(self, env):
        link = SharedBandwidth(env, rate=100.0)

        def proc():
            yield link.transfer(250.0)
            return env.now

        assert run_proc(env, proc()) == pytest.approx(2.5)

    def test_two_equal_transfers_share_fairly(self, env):
        link = SharedBandwidth(env, rate=100.0)

        def proc():
            a = link.transfer(100.0)
            b = link.transfer(100.0)
            yield AllOf(env, [a, b])
            return env.now

        # Each gets 50 B/s → both finish at t=2.
        assert run_proc(env, proc()) == pytest.approx(2.0)

    def test_late_arrival_slows_first(self, env):
        link = SharedBandwidth(env, rate=100.0)
        done = {}

        def first():
            yield link.transfer(100.0)
            done["first"] = env.now

        def second():
            yield env.timeout(0.5)
            yield link.transfer(100.0)
            done["second"] = env.now

        env.process(first())
        env.process(second())
        env.run()
        # first: 50B alone (0.5s), then shares: 50B at 50B/s → 1s more = 1.5
        assert done["first"] == pytest.approx(1.5)
        # second: 50B shared (1s) then 50B alone (0.5s) → 2.0
        assert done["second"] == pytest.approx(2.0)

    def test_per_stream_cap(self, env):
        link = SharedBandwidth(env, rate=1000.0, per_stream_cap=10.0)

        def proc():
            yield link.transfer(100.0)
            return env.now

        assert run_proc(env, proc()) == pytest.approx(10.0)

    def test_zero_byte_transfer_is_instant(self, env):
        link = SharedBandwidth(env, rate=10.0)

        def proc():
            yield link.transfer(0.0)
            return env.now

        assert run_proc(env, proc()) == 0.0

    def test_negative_bytes_rejected(self, env):
        link = SharedBandwidth(env, rate=10.0)
        with pytest.raises(ValueError):
            link.transfer(-1.0)

    def test_invalid_rate_rejected(self, env):
        with pytest.raises(ValueError):
            SharedBandwidth(env, rate=0)
        with pytest.raises(ValueError):
            SharedBandwidth(env, rate=10.0, per_stream_cap=0)

    def test_bytes_moved_accounting(self, env):
        link = SharedBandwidth(env, rate=100.0)

        def proc():
            yield link.transfer(30.0)
            yield link.transfer(70.0)
            return link.bytes_moved

        assert run_proc(env, proc()) == pytest.approx(100.0)

    def test_many_concurrent_transfers_work_conserving(self, env):
        link = SharedBandwidth(env, rate=100.0)

        def proc():
            events = [link.transfer(10.0) for _ in range(10)]
            yield AllOf(env, events)
            return env.now

        # 100 bytes total at 100 B/s: exactly 1 s regardless of splitting.
        assert run_proc(env, proc()) == pytest.approx(1.0)

    def test_tiny_remnants_do_not_spin(self, env):
        # Regression: float residue below byte resolution must complete,
        # not schedule zero-delay wake-ups forever.
        link = SharedBandwidth(env, rate=1 / 3)

        def proc():
            events = [link.transfer(0.1) for _ in range(7)]
            yield AllOf(env, events)
            return env.now

        t = run_proc(env, proc())
        assert t == pytest.approx(0.7 / (1 / 3), rel=1e-6)

    def test_estimated_time_reflects_load(self, env):
        link = SharedBandwidth(env, rate=100.0)
        assert link.estimated_time(100.0) == pytest.approx(1.0)
        link.transfer(1000.0)
        assert link.estimated_time(100.0) == pytest.approx(2.0)

    def test_active_transfers_counter(self, env):
        link = SharedBandwidth(env, rate=1.0)
        link.transfer(100.0)
        link.transfer(100.0)
        assert link.active_transfers == 2
