"""Edge tests for engine conveniences and Timeout values in conditions."""

from repro.sim import AnyOf, Environment
from tests.conftest import run_proc


class TestEnvConveniences:
    def test_any_of_method(self, env):
        def proc():
            fired = yield env.any_of([env.timeout(1, value="a"), env.timeout(9)])
            return list(fired.values())

        assert run_proc(env, proc()) == ["a"]

    def test_all_of_method(self, env):
        def proc():
            fired = yield env.all_of([env.timeout(1, value="a"), env.timeout(2, value="b")])
            return sorted(fired.values())

        assert run_proc(env, proc()) == ["a", "b"]

    def test_timeout_values_visible_in_condition_results(self, env):
        def proc():
            t = env.timeout(3, value={"payload": 1})
            fired = yield AnyOf(env, [t])
            return fired[t]

        assert run_proc(env, proc()) == {"payload": 1}

    def test_independent_environments_do_not_interact(self):
        e1, e2 = Environment(), Environment()
        e1.timeout(5)
        e2.run()  # empty queue: no effect from e1's event
        assert e2.now == 0.0 and e1.peek() == 5.0
