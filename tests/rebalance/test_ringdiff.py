"""Property-based tests for the RingDiff join planner.

The plan is the contract everything downstream (warmup, cutover, bench
assertions) relies on, so its invariants are pinned over random ring
states and joins:

* only keys whose *primary owner changes* appear in the plan, and every
  such key's new owner is the candidate (minimal movement, per-join);
* the moved fraction converges to ``weight / total_weight``;
* remove-then-readd yields an empty diff (planning is the exact inverse
  of removal for an unchanged ring).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import HashRing, bulk_hash64
from repro.rebalance import RingDiff

KEYS = [f"/data/train/sample_{i:06d}.bin" for i in range(4000)]
HASHES = bulk_hash64(KEYS)


def _ring(n_nodes, vnodes=60, weights=None, probes=1):
    return HashRing(
        nodes=range(n_nodes), vnodes_per_node=vnodes, weights=weights, probes=probes
    )


class TestPlanInvariants:
    @settings(max_examples=25, deadline=None)
    @given(
        n_nodes=st.integers(min_value=1, max_value=8),
        weight=st.floats(min_value=0.25, max_value=4.0, allow_nan=False),
        probes=st.sampled_from([1, 3]),
    )
    def test_only_owner_changed_keys_in_plan(self, n_nodes, weight, probes):
        ring = _ring(n_nodes, probes=probes)
        candidate = n_nodes  # first free id
        plan = RingDiff(ring).plan_join(candidate, KEYS, weight=weight)
        before = ring.lookup_hashes(HASHES)
        after = ring.lookup_hashes_including(HASHES, candidate, weight=weight)
        changed = {KEYS[i] for i in (before != after).nonzero()[0]}
        assert {path for path, _ in plan.moves} == changed
        # every move records the key's *current* owner and targets the candidate
        for i in (before != after).nonzero()[0]:
            assert after[i] == candidate
        by_key = dict(plan.moves)
        for i in (before != after).nonzero()[0]:
            assert by_key[KEYS[i]] == before[i]

    @settings(max_examples=15, deadline=None)
    @given(
        n_nodes=st.integers(min_value=2, max_value=6),
        weight=st.floats(min_value=0.5, max_value=3.0, allow_nan=False),
    )
    def test_moved_fraction_tracks_weight(self, n_nodes, weight):
        ring = _ring(n_nodes, vnodes=150)
        plan = RingDiff(ring).plan_join(n_nodes, KEYS, weight=weight)
        theoretical = weight / (n_nodes + weight)
        assert plan.theoretical_fraction == pytest.approx(theoretical)
        # 150 vnodes over 4000 keys: generous but non-vacuous tolerance
        assert plan.predicted_fraction == pytest.approx(theoretical, rel=0.35)

    @settings(max_examples=20, deadline=None)
    @given(
        n_nodes=st.integers(min_value=2, max_value=8),
        victim=st.integers(min_value=0, max_value=7),
        probes=st.sampled_from([1, 3]),
    )
    def test_remove_then_readd_is_empty_diff(self, n_nodes, victim, probes):
        victim = victim % n_nodes
        original = _ring(n_nodes, probes=probes)
        ring = original.clone()
        ring.remove_node(victim)
        # readding the victim steals back exactly the keys it owned before,
        # i.e. the post-readd ring is an *empty diff* against the original
        plan = RingDiff(ring).plan_join(victim, KEYS)
        originally_owned = {
            KEYS[i] for i in (original.lookup_hashes(HASHES) == victim).nonzero()[0]
        }
        assert {path for path, _ in plan.moves} == originally_owned
        readd = ring.clone()
        readd.add_node(victim)
        assert (readd.lookup_hashes(HASHES) == original.lookup_hashes(HASHES)).all()


class TestPlanBookkeeping:
    def test_per_source_counts_sum_to_moves(self):
        ring = _ring(4)
        sizes = {k: 100 + i for i, k in enumerate(KEYS)}
        plan = RingDiff(ring).plan_join(4, KEYS, weight=2.0, sizes=sizes)
        assert sum(plan.keys_by_source.values()) == plan.moved_keys == len(plan.moves)
        assert plan.moved_bytes == sum(sizes[p] for p, _ in plan.moves)
        assert plan.total_bytes == sum(sizes.values())
        d = plan.to_dict()
        assert d["moved_keys"] == plan.moved_keys
        assert d["theoretical_fraction"] == pytest.approx(2.0 / 6.0)

    def test_snapshot_isolation(self):
        """Planning must not observe later mutations of the live ring."""
        ring = _ring(3)
        diff = RingDiff(ring)
        ring.remove_node(0)  # live ring changes after the snapshot
        plan = diff.plan_join(7, KEYS)
        assert plan.theoretical_fraction == pytest.approx(1.0 / 4.0)

    def test_rejects_existing_node(self):
        with pytest.raises(ValueError):
            RingDiff(_ring(3)).plan_join(1, KEYS)

    def test_empty_keyspace(self):
        plan = RingDiff(_ring(3)).plan_join(3, [], weight=1.0)
        assert plan.moves == () and plan.predicted_fraction == 0.0
        assert plan.theoretical_fraction == pytest.approx(0.25)
