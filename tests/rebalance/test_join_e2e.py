"""End-to-end elastic join against a real LocalCluster (sockets and all).

The contract under test is the tentpole: a live join is planned, warmed
through the bounded mover, and cut over with zero client-visible errors —
and the MembershipView admission is observable *before* any placement can
route to the new node (the lookup-before-backfill window).
"""

import time

import pytest

from repro.rebalance import JoinState
from repro.runtime.cluster import LocalCluster


def _wait_mover_drained(server, timeout=5.0):
    """Transfers are async behind the bounded mover; wait for the flush."""
    deadline = time.monotonic() + timeout
    while (server.mover.queue_len or server.mover._inflight) and time.monotonic() < deadline:
        time.sleep(0.01)


@pytest.fixture
def cluster(tmp_path):
    with LocalCluster(
        n_servers=3, workdir=tmp_path, policy="nvme", ttl=0.5, timeout_threshold=2
    ) as c:
        c.populate(n_files=96, file_bytes=2048)
        yield c


class TestJoinE2E:
    def test_join_moves_planned_keys_with_zero_errors(self, cluster):
        client = cluster.client()
        for p in cluster.paths:
            client.read(p)  # warm the source caches

        report = cluster.join_server(weight=1.5)
        assert report.state == JoinState.SERVING.value
        plan = report.plan
        assert report.warmed_keys == plan.moved_keys > 0
        assert plan.theoretical_fraction == pytest.approx(1.5 / 4.5)
        # warmup read from current owners' caches, never the PFS directly
        assert report.source_cache_reads == plan.moved_keys
        assert report.pfs_fallback_reads == 0

        # post-cutover: exactly the planned keys route to the new node...
        node = report.node
        _wait_mover_drained(cluster.servers[node])
        moved = {p for p, _ in plan.moves}
        routed = {p for p in cluster.paths if client.policy.placement.lookup(p) == node}
        assert routed == moved
        # ...and it serves them as cache hits (the backfill landed)
        for p in cluster.paths:
            client.read(p)
        stat = client.server_stat(node)
        assert stat["hits"] == len(moved)
        assert stat["transfers_in"] == report.warmed_keys
        assert stat["join_plans"] == 1
        assert client.stats["timeouts"] == 0 and client.stats["declared"] == 0

    def test_membership_notified_before_any_placement_routes(self, cluster):
        """Regression: the lookup-before-backfill window.

        Subscribers observing the membership admission must see pre-join
        routing — no client placement may know the node yet when the
        version bump and notification land."""
        client = cluster.client()
        observed = []

        def listener(node, state):
            placements_knowing_node = [
                c for c in cluster._clients if node in c.policy.placement.nodes
            ]
            observed.append(
                (node, state.name, cluster.membership.version, placements_knowing_node)
            )

        cluster.membership.subscribe(listener)
        v0 = cluster.membership.version
        report = cluster.join_server()
        node = report.node

        joins = [o for o in observed if o[0] == node]
        assert len(joins) == 1
        _, state, version_at_notify, placements = joins[0]
        assert state == "ACTIVE"
        assert version_at_notify == v0 + 1  # bumped before notification
        assert placements == []  # no placement had the node yet
        # after cutover completes, every client placement knows it
        assert all(node in c.policy.placement.nodes for c in cluster._clients)
        assert client.policy.placement.weight_of(node) == 1.0

    def test_epoch_advances_and_connections_survive(self, cluster):
        client = cluster.client()
        for p in cluster.paths[:8]:
            client.read(p)
        e0 = cluster.ring_epoch.value
        report = cluster.join_server()
        assert report.cutover_epoch == cluster.ring_epoch.value == e0 + 1
        assert report.planned_epoch == e0
        # pooled sockets to old owners keep working (no reconnect storm,
        # no detector evidence) — only routing changed
        for p in cluster.paths[:8]:
            client.read(p)
        assert client.stats["timeouts"] == 0

    def test_weighted_join_visible_to_future_clients(self, cluster):
        cluster.join_server(weight=2.0)
        late = cluster.client()
        node = max(cluster.servers)
        assert late.policy.placement.weight_of(node) == 2.0
        # the heavy node owns roughly twice a unit node's share
        fr = late.policy.placement.arc_fractions()
        assert fr[node] == pytest.approx(2.0 / 5.0, abs=0.08)

    def test_sequential_joins(self, cluster):
        r1 = cluster.join_server()
        r2 = cluster.join_server()
        assert r1.node != r2.node
        assert len(cluster.join_reports) == 2
        assert cluster.membership.active_nodes == tuple(sorted(cluster.servers))
        client = cluster.client()
        for p in cluster.paths:
            client.read(p)
        assert client.stats["timeouts"] == 0

    def test_join_reads_fall_back_to_pfs_when_sources_cold(self, cluster):
        # no client ever read anything: source caches are cold, so warmup
        # bytes come via the owners' PFS fallthrough (still not direct PFS)
        report = cluster.join_server()
        assert report.state == JoinState.SERVING.value
        assert report.source_pfs_reads == report.plan.moved_keys
        assert report.source_cache_reads == 0
