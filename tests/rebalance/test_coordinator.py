"""Unit tests for the JoinCoordinator state machine (fakes, no sockets).

Pins the transition discipline (PLANNED → WARMING → SERVING, abort from
anywhere pre-cutover), the warmup data paths (owner cache → owner PFS →
coordinator PFS fallback), the throttle loop, and the rollback contract.
"""

import pytest

from repro.rebalance import JoinAborted, JoinCoordinator, JoinState, RingDiff
from repro.rebalance.ringdiff import MovePlan
from repro.runtime.client import ReadError


def make_plan(moves, node=9):
    return MovePlan(
        node=node,
        weight=1.0,
        moves=tuple(moves),
        total_keys=max(len(moves), 1),
        total_bytes=0,
        predicted_fraction=len(moves) / max(len(moves), 1),
        theoretical_fraction=0.25,
        planned_epoch=4,
    )


class FakeControl:
    """Scriptable stand-in for FTCacheClient's explicit-node RPC surface."""

    def __init__(
        self,
        ack_plan=True,
        reads=None,
        transfer_ok=True,
        queue_lens=None,
        stat_queue_lens=None,
    ):
        self.ack_plan = ack_plan
        self.reads = reads or {}  # path -> (data, source) | None | ReadError
        self.transfer_ok = transfer_ok
        self.queue_lens = list(queue_lens or [])
        self.stat_queue_lens = list(stat_queue_lens or [])
        self.transfers = []
        self.plan_calls = []

    def join_plan(self, node, planned_keys, planned_bytes, epoch):
        self.plan_calls.append((node, planned_keys, planned_bytes, epoch))
        return self.ack_plan

    def read_from(self, node, path):
        outcome = self.reads.get(path, (b"x" * 8, "cache"))
        if outcome is ReadError:
            raise ReadError(path)
        return outcome

    def transfer(self, node, path, data):
        if self.transfer_ok is None:
            return None  # unreachable
        self.transfers.append((node, path, data))
        q = self.queue_lens.pop(0) if self.queue_lens else 0
        return {"accepted": bool(self.transfer_ok), "queue_len": q}

    def server_stat(self, node):
        if not self.stat_queue_lens:
            return None
        return {"mover_queue_len": self.stat_queue_lens.pop(0)}


class FakePFS:
    def __init__(self, files=None):
        self.files = files or {}
        self.reads = []

    def read(self, path):
        self.reads.append(path)
        try:
            return self.files[path]
        except KeyError:
            raise FileNotFoundError(path) from None


def make_coord(plan, control, pfs=None, **kw):
    events = []
    coord = JoinCoordinator(
        plan=plan,
        control=control,
        pfs=pfs if pfs is not None else FakePFS(),
        cutover=lambda: events.append("cutover") or 5,
        rollback=lambda: events.append("rollback"),
        queue_depth=kw.pop("queue_depth", 8),
        **kw,
    )
    return coord, events


class TestStateMachine:
    def test_happy_path(self):
        plan = make_plan([("/a", 0), ("/b", 1)])
        control = FakeControl()
        coord, events = make_coord(plan, control)
        assert coord.state is JoinState.PLANNED
        report = coord.run()
        assert coord.state is JoinState.SERVING
        assert events == ["cutover"]
        assert report.warmed_keys == 2
        assert report.cutover_epoch == 5 and report.planned_epoch == 4
        assert control.plan_calls == [(9, 2, 0, 4)]
        assert [p for _, p, _ in control.transfers] == ["/a", "/b"]

    def test_unacknowledged_plan_aborts_before_any_transfer(self):
        plan = make_plan([("/a", 0)])
        control = FakeControl(ack_plan=False)
        coord, events = make_coord(plan, control)
        with pytest.raises(JoinAborted):
            coord.run()
        assert coord.state is JoinState.ABORTED
        assert events == ["rollback"]
        assert control.transfers == []

    def test_unreachable_during_warmup_aborts_and_rolls_back(self):
        plan = make_plan([("/a", 0)])
        control = FakeControl(transfer_ok=None)
        coord, events = make_coord(plan, control)
        with pytest.raises(JoinAborted):
            coord.run()
        assert coord.state is JoinState.ABORTED
        assert events == ["rollback"]
        assert coord.report.abort_reason

    def test_no_transitions_out_of_terminal_states(self):
        plan = make_plan([])
        coord, _ = make_coord(plan, FakeControl())
        coord.run()
        with pytest.raises(RuntimeError):
            coord._transition(JoinState.WARMING)


class TestWarmupDataPaths:
    def test_source_accounting(self):
        plan = make_plan([("/cache", 0), ("/srv-pfs", 1), ("/fallback", 2)])
        control = FakeControl(
            reads={
                "/cache": (b"c", "cache"),
                "/srv-pfs": (b"p", "pfs"),
                "/fallback": None,  # owner timed out: coordinator goes to PFS
            }
        )
        pfs = FakePFS(files={"/fallback": b"f"})
        coord, _ = make_coord(plan, control, pfs=pfs)
        report = coord.run()
        assert report.source_cache_reads == 1
        assert report.source_pfs_reads == 1
        assert report.pfs_fallback_reads == 1
        assert report.warmed_keys == 3
        assert pfs.reads == ["/fallback"]

    def test_vanished_key_is_skipped_not_fatal(self):
        plan = make_plan([("/gone", 0), ("/ok", 1)])
        control = FakeControl(reads={"/gone": ReadError, "/ok": (b"k", "cache")})
        coord, _ = make_coord(plan, control, pfs=FakePFS())
        report = coord.run()
        assert report.warmed_keys == 1
        assert report.extras["missing_keys"] == 1
        assert coord.state is JoinState.SERVING

    def test_rejected_transfer_counted(self):
        plan = make_plan([("/a", 0)])
        control = FakeControl(transfer_ok=False)
        coord, _ = make_coord(plan, control)
        report = coord.run()
        assert report.transfers_rejected == 1 and report.warmed_keys == 0


class TestThrottle:
    def test_pauses_until_queue_drains(self):
        plan = make_plan([("/a", 0)])
        # transfer reply reports a full queue; two stats polls later it drains
        control = FakeControl(queue_lens=[8], stat_queue_lens=[8, 0])
        coord, _ = make_coord(plan, control, throttle_sleep=0.001)
        report = coord.run()
        assert report.throttle_pauses == 2

    def test_no_pause_below_watermark(self):
        plan = make_plan([("/a", 0), ("/b", 1)])
        control = FakeControl(queue_lens=[1, 2])
        coord, _ = make_coord(plan, control)
        report = coord.run()
        assert report.throttle_pauses == 0

    def test_stat_timeout_breaks_the_loop(self):
        plan = make_plan([("/a", 0)])
        control = FakeControl(queue_lens=[8], stat_queue_lens=[])  # stat → None
        coord, _ = make_coord(plan, control, throttle_sleep=0.001)
        report = coord.run()
        assert report.throttle_pauses == 1
        assert coord.state is JoinState.SERVING


class TestValidation:
    def test_bad_params(self):
        plan = make_plan([])
        with pytest.raises(ValueError):
            JoinCoordinator(plan, FakeControl(), FakePFS(), cutover=lambda: 1, queue_depth=0)
        with pytest.raises(ValueError):
            JoinCoordinator(
                plan, FakeControl(), FakePFS(), cutover=lambda: 1, throttle_fraction=0.0
            )

    def test_ringdiff_integration_smoke(self):
        """Coordinator consumes a real plan object end-to-end."""
        from repro.core import HashRing

        ring = HashRing(nodes=range(3), vnodes_per_node=50)
        keys = [f"/k{i}" for i in range(200)]
        plan = RingDiff(ring).plan_join(3, keys)
        control = FakeControl()
        coord, _ = make_coord(plan, control)
        report = coord.run()
        assert report.warmed_keys == plan.moved_keys == len(control.transfers)
