"""RT003 fixtures: transitive blocking under a held lock, true positives
and the false-positive guards that keep the rule trustworthy."""

from __future__ import annotations

import textwrap

from repro.analysis.engine import lint_source, run_lint

PATH = "src/repro/runtime/snippet.py"


def lint(code: str, path: str = PATH):
    return lint_source(path, textwrap.dedent(code))


def lint_project(modules: dict):
    return run_lint([(p, textwrap.dedent(s)) for p, s in modules.items()]).findings


def rules_of(findings) -> list:
    return [f.rule for f in findings]


class TestRT003TruePositives:
    def test_helper_that_sleeps_flagged_with_chain(self):
        findings = lint(
            """
            import threading, time
            lock = threading.Lock()

            def helper():
                time.sleep(0.5)

            def f():
                with lock:
                    helper()
            """
        )
        assert rules_of(findings) == ["RT003"]
        msg = findings[0].message
        assert "helper" in msg and "time.sleep" in msg and "'lock'" in msg

    def test_method_chain_through_self_flagged(self):
        findings = lint(
            """
            import threading, time

            class Mover:
                def __init__(self):
                    self._lock = threading.Lock()

                def drain(self):
                    with self._lock:
                        self._flush()

                def _flush(self):
                    time.sleep(1.0)
            """
        )
        assert rules_of(findings) == ["RT003"]
        assert "_flush" in findings[0].message

    def test_two_hop_cross_module_chain(self):
        findings = lint_project(
            {
                "src/repro/runtime/slowio.py": """
                import time

                def slow():
                    time.sleep(2.0)
                """,
                "src/repro/runtime/caller.py": """
                import threading
                from .slowio import slow

                lock = threading.Lock()

                def middle():
                    slow()

                def f():
                    with lock:
                        middle()
                """,
            }
        )
        assert rules_of(findings) == ["RT003"]
        msg = findings[0].message
        assert "middle" in msg and "slow" in msg  # the full offending chain

    def test_finding_anchored_at_with_line_for_suppression(self):
        findings = lint(
            """
            import threading, time
            lock = threading.Lock()

            def helper():
                time.sleep(0.5)

            def f():
                with lock:
                    helper()
            """
        )
        assert findings[0].anchor_lines  # suppressible at the with statement


class TestRT003FalsePositiveGuards:
    def test_direct_blocking_call_is_rt001_only(self):
        findings = lint(
            """
            import threading, time
            lock = threading.Lock()

            def f():
                with lock:
                    time.sleep(0.1)
            """
        )
        assert rules_of(findings) == ["RT001"]  # no RT003 double-report

    def test_helper_called_outside_lock_clean(self):
        findings = lint(
            """
            import threading, time
            lock = threading.Lock()

            def helper():
                time.sleep(0.5)

            def f():
                with lock:
                    pass
                helper()
            """
        )
        assert findings == []

    def test_nonblocking_helper_clean(self):
        findings = lint(
            """
            import threading
            lock = threading.Lock()

            def helper(xs):
                return sum(xs)

            def f(xs):
                with lock:
                    return helper(xs)
            """
        )
        assert findings == []

    def test_thread_target_closure_under_lock_clean(self):
        # the closure body runs on the spawned thread, after the with exits
        findings = lint(
            """
            import threading, time
            lock = threading.Lock()

            def f():
                with lock:
                    def push():
                        time.sleep(1.0)
                    t = threading.Thread(target=push, name="push", daemon=True)
                return t
            """
        )
        assert findings == []

    def test_justified_suppression_on_with_line_silences(self):
        findings = lint(
            """
            import threading, time
            lock = threading.Lock()

            def helper():
                time.sleep(0.5)

            def f():
                with lock:  # ftlint: disable=RT003 -- helper is bounded by the poll tick
                    helper()
            """
        )
        assert findings == []
