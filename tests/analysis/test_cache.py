"""Result-cache behaviour: hits, content-hash invalidation, project-key
invalidation, and the CLI surface (--no-cache, --cache-file, stats)."""

from __future__ import annotations

import json
import textwrap

from repro.analysis.__main__ import main
from repro.analysis.cache import AnalysisCache
from repro.analysis.engine import run_lint_paths

DIRTY = """
    import threading

    def f(target):
        threading.Thread(target=target).start()
"""


def _write(tmp_path, rel, code):
    p = tmp_path / rel
    p.parent.mkdir(parents=True, exist_ok=True)
    p.write_text(textwrap.dedent(code))
    return p


class TestCacheEngine:
    def test_second_run_hits_and_findings_identical(self, tmp_path):
        _write(tmp_path, "pkg/mod.py", DIRTY)
        cache_file = tmp_path / "cache.json"

        first = run_lint_paths([tmp_path / "pkg"], cache=AnalysisCache(cache_file))
        cold = first.cache_stats
        assert cold["module_misses"] == 1 and cold["module_hits"] == 0
        assert cold["project_hit"] is False

        second = run_lint_paths([tmp_path / "pkg"], cache=AnalysisCache(cache_file))
        warm = second.cache_stats
        assert warm["module_hits"] == 1 and warm["module_misses"] == 0
        assert warm["project_hit"] is True
        assert [f.to_dict() for f in first.findings] == [
            f.to_dict() for f in second.findings
        ]

    def test_edited_file_invalidates_itself_and_project_key(self, tmp_path):
        _write(tmp_path, "pkg/a.py", DIRTY)
        _write(tmp_path, "pkg/b.py", "x = 1\n")
        cache_file = tmp_path / "cache.json"
        run_lint_paths([tmp_path / "pkg"], cache=AnalysisCache(cache_file))

        _write(tmp_path, "pkg/a.py", DIRTY + "    y = 2\n")
        result = run_lint_paths([tmp_path / "pkg"], cache=AnalysisCache(cache_file))
        stats = result.cache_stats
        assert stats["module_misses"] == 1  # only the edited file re-ran
        assert stats["module_hits"] == 1
        assert stats["project_hit"] is False  # tree changed → interproc re-ran

    def test_touch_without_edit_still_hits(self, tmp_path):
        import os

        p = _write(tmp_path, "pkg/mod.py", DIRTY)
        cache_file = tmp_path / "cache.json"
        run_lint_paths([tmp_path / "pkg"], cache=AnalysisCache(cache_file))
        os.utime(p)  # new mtime, same content: hash decides, still a hit
        stats = run_lint_paths(
            [tmp_path / "pkg"], cache=AnalysisCache(cache_file)
        ).cache_stats
        assert stats["module_hits"] == 1 and stats["module_misses"] == 0

    def test_suppressions_apply_on_cache_hits(self, tmp_path):
        # suppressions are re-applied from source, never baked into the
        # cached raw findings — a hit must not resurrect silenced rules
        _write(
            tmp_path,
            "pkg/mod.py",
            """
            import threading

            def f(target):
                threading.Thread(target=target).start()  # ftlint: disable=RT002 -- fixture
            """,
        )
        cache_file = tmp_path / "cache.json"
        assert run_lint_paths([tmp_path], cache=AnalysisCache(cache_file)).findings == []
        assert run_lint_paths([tmp_path], cache=AnalysisCache(cache_file)).findings == []


class TestCacheCLI:
    def test_stats_in_json_payload(self, tmp_path, capsys):
        _write(tmp_path, "pkg/mod.py", DIRTY)
        cache_file = tmp_path / "cache.json"
        args = [str(tmp_path / "pkg"), "--format", "json",
                "--cache-file", str(cache_file)]
        main(args)
        capsys.readouterr()
        main(args)
        doc = json.loads(capsys.readouterr().out)
        assert doc["cache"]["enabled"] is True
        assert doc["cache"]["module_hits"] == 1
        assert doc["cache"]["project_hit"] is True

    def test_no_cache_bypasses(self, tmp_path, capsys):
        _write(tmp_path, "pkg/mod.py", DIRTY)
        cache_file = tmp_path / "cache.json"
        main([str(tmp_path / "pkg"), "--no-cache", "--format", "json",
              "--cache-file", str(cache_file)])
        doc = json.loads(capsys.readouterr().out)
        assert doc["cache"] == {"enabled": False}
        assert not cache_file.exists()

    def test_lock_graph_artifact_written(self, tmp_path, capsys):
        _write(
            tmp_path,
            "src/repro/runtime/locks.py",
            """
            from repro.analysis.lockwitness import named_lock

            a_lock = named_lock("role-a")
            b_lock = named_lock("role-b")

            def f():
                with a_lock:
                    with b_lock:
                        pass
            """,
        )
        out = tmp_path / "lockgraph.json"
        main([str(tmp_path / "src"), "--no-cache", "--lock-graph", str(out)])
        capsys.readouterr()
        doc = json.loads(out.read_text())
        assert {(e["from"], e["to"]) for e in doc["edges"]} == {("role-a", "role-b")}
        assert doc["cycles"] == []
