"""RES001 fixtures: handle-leak detection over the CFG, exception edges
included — plus the with/try-finally/escape shapes that must stay clean."""

from __future__ import annotations

import textwrap

from repro.analysis.engine import lint_source

PATH = "src/repro/runtime/snippet.py"


def lint(code: str, path: str = PATH):
    return lint_source(path, textwrap.dedent(code))


def rules_of(findings) -> list:
    return [f.rule for f in findings]


class TestRES001TruePositives:
    def test_never_closed_flags_both_paths(self):
        findings = lint(
            """
            def f(path):
                fh = open(path)
                data = fh.read()
                return data
            """
        )
        assert rules_of(findings) == ["RES001"]
        assert "normal return and exception paths" in findings[0].message

    def test_closed_only_on_normal_path_flags_exception_path(self):
        findings = lint(
            """
            def f(path):
                fh = open(path)
                data = fh.read()
                fh.close()
                return data
            """
        )
        assert rules_of(findings) == ["RES001"]
        assert "exception path" in findings[0].message

    def test_socket_variant_flagged(self):
        findings = lint(
            """
            import socket

            def probe(addr):
                sock = socket.create_connection(addr, timeout=1.0)
                sock.sendall(b"ping")
                return sock.recv(4)
            """
        )
        assert rules_of(findings) == ["RES001"]
        assert "'sock'" in findings[0].message

    def test_discarded_handle_flagged_directly(self):
        findings = lint(
            """
            def touch(path):
                open(path)
            """
        )
        assert rules_of(findings) == ["RES001"]
        assert "discarded" in findings[0].message

    def test_justified_suppression_silences(self):
        findings = lint(
            """
            def f(path):
                fh = open(path)  # ftlint: disable=RES001 -- handed to atexit in caller
                return fh.read()
            """
        )
        assert findings == []


class TestRES001FalsePositiveGuards:
    def test_with_block_clean(self):
        findings = lint(
            """
            def f(path):
                with open(path) as fh:
                    return fh.read()
            """
        )
        assert findings == []

    def test_try_finally_clean(self):
        findings = lint(
            """
            def f(path):
                fh = open(path)
                try:
                    data = fh.read()
                finally:
                    fh.close()
                return data
            """
        )
        assert findings == []

    def test_returned_handle_escapes_and_is_not_tracked(self):
        findings = lint(
            """
            import socket

            def connect(addr):
                sock = socket.create_connection(addr, timeout=1.0)
                sock.settimeout(1.0)
                return sock
            """
        )
        assert findings == []

    def test_handle_passed_to_callee_escapes(self):
        findings = lint(
            """
            def f(path, registry):
                fh = open(path)
                registry.adopt(fh)
            """
        )
        assert findings == []

    def test_outside_scoped_packages_not_checked(self):
        findings = lint(
            """
            def f(path):
                fh = open(path)
                return fh.read()
            """,
            path="src/repro/viz/snippet.py",
        )
        assert findings == []
