"""Tests for the runtime lock-order witness.

Hazard-seeding tests build their own :class:`LockWitness` instances so the
session-wide default witness (enabled by conftest, asserted clean at session
end) never sees the deliberately poisoned schedules.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.analysis import lockwitness
from repro.analysis.lockwitness import LockOrderViolation, LockWitness


def _run_sequential(*targets):
    """Run each target on its own thread, one after another — exercises the
    per-thread bookkeeping without any chance of an actual deadlock."""
    for i, fn in enumerate(targets):
        t = threading.Thread(target=fn, name=f"lw-test-{i}", daemon=True)
        t.start()
        t.join(timeout=5)
        assert not t.is_alive(), f"seed thread {i} wedged"


def _seed_ab_ba(lock_a, lock_b):
    def first():
        with lock_a:
            with lock_b:
                pass

    def second():
        with lock_b:
            with lock_a:
                pass

    _run_sequential(first, second)


class TestCycleDetection:
    def test_seeded_ab_ba_cycle_detected_when_enabled(self):
        w = LockWitness()
        _seed_ab_ba(w.named_lock("A"), w.named_lock("B"))

        assert w.find_cycles() == [["A", "B"]]
        with pytest.raises(LockOrderViolation) as exc:
            w.assert_clean()
        msg = str(exc.value)
        assert "A→B" in msg and "B→A" in msg
        # Evidence includes the acquisition site of each edge.
        assert __file__ in msg

    def test_seeded_cycle_invisible_when_detection_disabled(self):
        # The detector is load-bearing: the exact same AB/BA schedule through
        # un-witnessed (plain threading) locks records nothing, so the cycle
        # assertion above would fail if detection were turned off.
        _seed_ab_ba(
            lockwitness.named_lock("seed-A", witness=False),
            lockwitness.named_lock("seed-B", witness=False),
        )
        seen = {role for cyc in lockwitness.find_cycles() for role in cyc}
        assert "seed-A" not in seen and "seed-B" not in seen

    def test_consistent_order_is_clean(self):
        w = LockWitness()
        a, b = w.named_lock("A"), w.named_lock("B")

        def nested():
            with a:
                with b:
                    pass

        _run_sequential(nested, nested)
        rep = w.report()
        assert [(e["from"], e["to"]) for e in rep["edges"]] == [("A", "B")]
        assert rep["edges"][0]["count"] == 2
        assert rep["cycles"] == []
        w.assert_clean()

    def test_three_role_cycle_detected(self):
        w = LockWitness()
        a, b, c = (w.named_lock(n) for n in "ABC")

        def ab():
            with a, b:
                pass

        def bc():
            with b, c:
                pass

        def ca():
            with c, a:
                pass

        _run_sequential(ab, bc, ca)
        assert w.find_cycles() == [["A", "B", "C"]]

    def test_same_role_different_instances_unordered(self):
        # Two servers' stats locks share a role; nesting them is deliberately
        # not treated as an ordering fact (documented blind spot), so no
        # self-edge / bogus cycle appears.
        w = LockWitness()
        s1, s2 = w.named_lock("server-stats"), w.named_lock("server-stats")

        def nested():
            with s1:
                with s2:
                    pass

        _run_sequential(nested)
        rep = w.report()
        assert rep["edges"] == [] and rep["cycles"] == [] and rep["reentries"] == []


class TestHoldBudget:
    def test_over_budget_hold_reported(self):
        w = LockWitness(hold_budget=0.02)
        lock = w.named_lock("slow")

        def holder():
            with lock:
                time.sleep(0.06)  # ftlint: disable=RT001 -- deliberate over-budget hold: this test seeds the hazard the witness must catch

        _run_sequential(holder)
        rep = w.report()
        assert len(rep["hold_violations"]) == 1
        v = rep["hold_violations"][0]
        assert v["lock"] == "slow" and v["held_s"] > 0.02
        with pytest.raises(LockOrderViolation, match="held .*budget"):
            w.assert_clean()

    def test_fast_hold_clean(self):
        w = LockWitness(hold_budget=0.5)
        lock = w.named_lock("fast")

        def holder():
            with lock:
                pass

        _run_sequential(holder)
        assert w.report()["hold_violations"] == []

    def test_condition_wait_not_counted_as_hold(self):
        # wait() releases the lock; a 0.1s wait under a 0.03s budget must not
        # trip the budget because the thread is not *holding* during the wait.
        w = LockWitness(hold_budget=0.03)
        cond = w.named_condition("cond")

        def waiter():
            with cond:
                cond.wait(timeout=0.1)

        _run_sequential(waiter)
        assert w.report()["hold_violations"] == []

    def test_invalid_budget_rejected(self):
        with pytest.raises(ValueError):
            LockWitness(hold_budget=0)


class TestReentry:
    def test_same_instance_reentry_detected(self):
        w = LockWitness()
        lock = w.named_lock("mutex")

        def reenter():
            lock.acquire()
            try:
                # Would self-deadlock if it blocked forever; the witness
                # records the hazard at the *attempt*, before blocking.
                assert lock.acquire(True, 0.05) is False
            finally:
                lock.release()

        _run_sequential(reenter)
        rep = w.report()
        assert len(rep["reentries"]) == 1
        assert rep["reentries"][0]["lock"] == "mutex"
        with pytest.raises(LockOrderViolation, match="re-acquired"):
            w.assert_clean()


class TestConditionSemantics:
    def test_wait_notify_round_trip(self):
        w = LockWitness()
        cond = w.named_condition("cond")
        box = []

        def consumer():
            with cond:
                ok = cond.wait_for(lambda: bool(box), timeout=5)
                assert ok and box == ["item"]

        t = threading.Thread(target=consumer, name="lw-consumer", daemon=True)
        t.start()
        time.sleep(0.05)
        with cond:
            box.append("item")
            cond.notify_all()
        t.join(timeout=5)
        assert not t.is_alive()
        w.assert_clean()

    def test_wait_for_timeout(self):
        w = LockWitness()
        cond = w.named_condition("cond")
        with cond:
            assert cond.wait_for(lambda: False, timeout=0.05) is False


class TestFactories:
    def test_forced_off_returns_plain_primitives(self):
        lock = lockwitness.named_lock("x", witness=False)
        cond = lockwitness.named_condition("x", witness=False)
        assert isinstance(lock, type(threading.Lock()))
        assert isinstance(cond, threading.Condition)

    def test_forced_on_returns_witnessed_wrappers(self):
        lock = lockwitness.named_lock("x", witness=True)
        cond = lockwitness.named_condition("x", witness=True)
        assert type(lock).__name__ == "_WitnessLock"
        assert type(cond).__name__ == "_WitnessCondition"
        # Both still satisfy the lock protocol.
        with lock:
            assert lock.locked()
        with cond:
            pass

    def test_reset_clears_records(self):
        w = LockWitness()
        _seed_ab_ba(w.named_lock("A"), w.named_lock("B"))
        assert w.find_cycles()
        w.reset()
        rep = w.report()
        assert rep["edges"] == [] and rep["cycles"] == []
        w.assert_clean()
