"""Fixture-snippet tests for every lint rule: true positives AND the
deliberate false-positive guards (the heuristics are only trustworthy if
the things they must *not* flag stay unflagged)."""

from __future__ import annotations

import textwrap

from repro.analysis.engine import lint_source

RUNTIME_PATH = "src/repro/runtime/snippet.py"
SIM_PATH = "src/repro/sim/snippet.py"


def lint(code: str, path: str = RUNTIME_PATH):
    return lint_source(path, textwrap.dedent(code))


def rules_of(findings) -> list[str]:
    return [f.rule for f in findings]


# -- RT001: lock held while blocking ------------------------------------------------


class TestRT001:
    def test_sleep_under_lock_flagged(self):
        findings = lint(
            """
            import threading, time
            lock = threading.Lock()
            def f():
                with lock:
                    time.sleep(0.1)
            """
        )
        assert rules_of(findings) == ["RT001"]
        assert "time.sleep" in findings[0].message

    def test_socket_recv_under_lock_flagged(self):
        findings = lint(
            """
            def f(self):
                with self._conns_lock:
                    self.sock.recv(4096)
            """
        )
        assert rules_of(findings) == ["RT001"]

    def test_protocol_helpers_under_lock_flagged(self):
        findings = lint(
            """
            def f(self, sock, msg):
                with self._policy_lock:
                    send_message(sock, msg)
            """
        )
        assert rules_of(findings) == ["RT001"]

    def test_queue_get_and_thread_join_under_lock_flagged(self):
        findings = lint(
            """
            def f(self, worker_thread):
                with self._lock:
                    item = self.work_queue.get()
                    worker_thread.join(timeout=5)
            """
        )
        assert rules_of(findings) == ["RT001", "RT001"]

    def test_file_io_under_lock_flagged(self):
        findings = lint(
            """
            def f(self, tmp, data):
                with self._lock:
                    tmp.write_bytes(data)
            """
        )
        assert rules_of(findings) == ["RT001"]

    def test_pure_mutation_under_lock_clean(self):
        # The false-positive guard from the issue: a lock body that only
        # mutates in-memory state is exactly what locks are for.
        findings = lint(
            """
            def f(self, key, value):
                with self.suppress_lock:
                    self.table[key] = value
                    self.count += 1
                    self.table.get(key)
            """
        )
        assert findings == []

    def test_dict_get_under_lock_clean(self):
        # ``.get`` only counts when the receiver looks like a queue.
        findings = lint(
            """
            def f(self):
                with self._lock:
                    return self.conns.get("node")
            """
        )
        assert findings == []

    def test_condition_wait_on_held_condition_clean(self):
        # cond.wait() releases the held condition — the idiom, not a hazard.
        findings = lint(
            """
            def f(self):
                with self._cond:
                    while not self._queue:
                        self._cond.wait()
            """
        )
        assert findings == []

    def test_wait_on_other_primitive_under_lock_flagged(self):
        findings = lint(
            """
            def f(self):
                with self._cond:
                    self.some_event.wait()
            """
        )
        assert rules_of(findings) == ["RT001"]

    def test_nested_def_under_lock_clean(self):
        # Defining a function under a lock does not *run* it under the lock.
        findings = lint(
            """
            import time
            def f(self):
                with self._lock:
                    def later():
                        time.sleep(1.0)
                    self.callback = later
            """
        )
        assert findings == []

    def test_blocking_outside_lock_clean(self):
        findings = lint(
            """
            import time
            def f(self):
                with self._lock:
                    snapshot = list(self.items)
                time.sleep(0.1)
            """
        )
        assert findings == []

    def test_nonblocking_queue_put_clean(self):
        findings = lint(
            """
            def f(self, item):
                with self._lock:
                    self.queue.put(item, block=False)
            """
        )
        assert findings == []


# -- suppressions -------------------------------------------------------------------


class TestSuppressions:
    def test_justified_suppression_silences(self):
        findings = lint(
            """
            import time
            def f(self):
                with self._lock:  # ftlint: disable=RT001 -- sleep is 1ms and bounds a hardware settle
                    time.sleep(0.001)
            """
        )
        assert findings == []

    def test_suppression_on_call_line_also_works(self):
        findings = lint(
            """
            import time
            def f(self):
                with self._lock:
                    time.sleep(0.001)  # ftlint: disable=RT001 -- bounded 1ms settle
            """
        )
        assert findings == []

    def test_unjustified_suppression_reports_sup001(self):
        findings = lint(
            """
            import time
            def f(self):
                with self._lock:  # ftlint: disable=RT001
                    time.sleep(0.001)
            """
        )
        assert rules_of(findings) == ["SUP001"]

    def test_unused_suppression_reports_sup002(self):
        findings = lint(
            """
            def f(self):
                with self._lock:  # ftlint: disable=RT001 -- nothing blocking here anymore
                    self.count += 1
            """
        )
        assert rules_of(findings) == ["SUP002"]

    def test_marker_inside_string_literal_ignored(self):
        # Only real COMMENT tokens count — fixture snippets in strings don't.
        findings = lint(
            '''
            SNIPPET = """
            # ftlint: disable=RT001 -- not a real suppression
            """
            '''
        )
        assert findings == []


# -- RT002: untracked thread spawn ---------------------------------------------------


class TestRT002:
    def test_anonymous_thread_flagged(self):
        findings = lint(
            """
            import threading
            def f(target):
                t = threading.Thread(target=target)
                t.start()
            """
        )
        assert rules_of(findings) == ["RT002"]
        assert "name=" in findings[0].message and "daemon=" in findings[0].message

    def test_named_nondaemon_flagged_for_daemon(self):
        findings = lint(
            """
            import threading
            def f(target):
                threading.Thread(target=target, name="x").start()
            """
        )
        assert rules_of(findings) == ["RT002"]
        assert "daemon=" in findings[0].message and "name=" not in findings[0].message

    def test_named_daemon_thread_clean(self):
        findings = lint(
            """
            import threading
            def f(target):
                threading.Thread(target=target, name="data-mover-1", daemon=True).start()
            """
        )
        assert findings == []


# -- SIM001: determinism -------------------------------------------------------------


class TestSIM001:
    def test_wall_clock_in_sim_flagged(self):
        findings = lint(
            """
            import time
            def now():
                return time.time()
            """,
            path=SIM_PATH,
        )
        assert rules_of(findings) == ["SIM001"]

    def test_wall_clock_outside_contract_packages_clean(self):
        findings = lint(
            """
            import time
            def now():
                return time.time()
            """,
            path=RUNTIME_PATH,
        )
        assert findings == []

    def test_unseeded_default_rng_flagged_seeded_clean(self):
        findings = lint(
            """
            import numpy as np
            bad = np.random.default_rng()
            good = np.random.default_rng(1234)
            """,
            path=SIM_PATH,
        )
        assert rules_of(findings) == ["SIM001"]
        assert findings[0].line == 3

    def test_legacy_global_numpy_rng_flagged(self):
        findings = lint(
            """
            import numpy as np
            def f():
                np.random.seed(0)
                return np.random.randint(10)
            """,
            path=SIM_PATH,
        )
        assert rules_of(findings) == ["SIM001", "SIM001"]

    def test_stdlib_random_flagged(self):
        findings = lint(
            """
            import random
            def f():
                return random.random()
            """,
            path="src/repro/experiments/snippet.py",
        )
        assert rules_of(findings) == ["SIM001"]

    def test_generator_annotation_clean(self):
        findings = lint(
            """
            import numpy as np
            def f(rng: np.random.Generator) -> float:
                return float(rng.random())
            """,
            path=SIM_PATH,
        )
        assert findings == []


# -- EXC001: swallowed exceptions in thread targets ---------------------------------


class TestEXC001:
    def test_silent_broad_except_in_thread_target_flagged(self):
        findings = lint(
            """
            import threading
            def _worker():
                try:
                    work()
                except Exception:
                    pass
            def start():
                threading.Thread(target=_worker, name="w", daemon=True).start()
            """
        )
        assert rules_of(findings) == ["EXC001"]

    def test_bare_except_in_method_target_flagged(self):
        findings = lint(
            """
            import threading
            class Pool:
                def _run(self):
                    while True:
                        try:
                            self.step()
                        except:
                            continue
                def start(self):
                    threading.Thread(target=self._run, name="p", daemon=True).start()
            """
        )
        assert rules_of(findings) == ["EXC001"]

    def test_narrow_except_in_thread_target_clean(self):
        # `except OSError: pass` is a deliberate, narrow policy — not flagged.
        findings = lint(
            """
            import threading
            def _worker():
                try:
                    work()
                except OSError:
                    pass
            threading.Thread(target=_worker, name="w", daemon=True).start()
            """
        )
        assert findings == []

    def test_recorded_broad_except_clean(self):
        findings = lint(
            """
            import threading
            def _worker(errors):
                try:
                    work()
                except Exception as exc:
                    errors.append(exc)
            threading.Thread(target=_worker, name="w", daemon=True, args=([],)).start()
            """
        )
        assert findings == []

    def test_broad_silent_except_outside_thread_target_clean(self):
        findings = lint(
            """
            def ordinary():
                try:
                    work()
                except Exception:
                    pass
            """
        )
        assert findings == []


# -- CNT001: counter-registry drift -------------------------------------------------


class TestCNT001:
    def test_field_missing_from_registry_flagged(self):
        findings = lint(
            """
            STAT_COUNTER_KEYS = ("hits", "misses")
            class ServerStats:
                hits: int = 0
                misses: int = 0
                evictions: int = 0
                def counters(self):
                    return {k: getattr(self, k) for k in STAT_COUNTER_KEYS}
            """
        )
        assert rules_of(findings) == ["CNT001"]
        assert "evictions" in findings[0].message

    def test_registry_key_without_field_flagged(self):
        findings = lint(
            """
            STAT_COUNTER_KEYS = ("hits", "ghost")
            class ServerStats:
                hits: int = 0
                def counters(self):
                    return {k: getattr(self, k) for k in STAT_COUNTER_KEYS}
            """
        )
        assert rules_of(findings) == ["CNT001"]
        assert "ghost" in findings[0].message

    def test_bump_of_unregistered_counter_flagged(self):
        findings = lint(
            """
            CLIENT_COUNTER_KEYS = ("reads",)
            class C:
                def _bump(self, **kw):
                    pass
                def op(self):
                    self._bump(reads=1)
                    self._bump(writes=1)
            """
        )
        assert rules_of(findings) == ["CNT001"]
        assert "writes" in findings[0].message

    def test_never_bumped_registry_key_flagged(self):
        findings = lint(
            """
            CLIENT_COUNTER_KEYS = ("reads", "zombie")
            class C:
                def _bump(self, **kw):
                    pass
                def op(self):
                    self._bump(reads=1)
            """
        )
        assert rules_of(findings) == ["CNT001"]
        assert "zombie" in findings[0].message

    def test_consistent_registry_clean(self):
        findings = lint(
            """
            STAT_COUNTER_KEYS = ("hits", "misses")
            class ServerStats:
                hits: int = 0
                misses: int = 0
                def bump(self, **kw):
                    pass
            class Srv:
                def op(self):
                    self.stats.bump(hits=1)
                    self.stats.bump(misses=1)
            """
        )
        assert findings == []

    def test_module_without_registry_skipped(self):
        findings = lint(
            """
            class C:
                def _bump(self, **kw):
                    pass
                def op(self):
                    self._bump(anything=1)
            """
        )
        assert findings == []


# -- the real tree ------------------------------------------------------------------


class TestRealTree:
    def test_src_and_tests_are_clean(self):
        # The acceptance criterion, pinned as a regression test: the shipped
        # tree has zero findings and zero unexplained suppressions.
        from repro.analysis import lint_paths

        findings = lint_paths(["src", "tests"])
        assert findings == [], "\n" + "\n".join(f.format_human() for f in findings)

    def test_known_suppressions_all_fire(self):
        # storage.py carries justified RT001 suppressions; prove the rule
        # actually fires there by deleting the markers and re-linting.
        from pathlib import Path

        source = Path("src/repro/runtime/storage.py").read_text()
        stripped = source.replace("# ftlint: disable=RT001", "# (suppression removed)")
        findings = lint_source("src/repro/runtime/storage.py", stripped)
        assert any(f.rule == "RT001" for f in findings)
