"""CLI and engine-level tests for ``python -m repro.analysis``."""

from __future__ import annotations

import json
import textwrap

from repro.analysis.__main__ import main
from repro.analysis.engine import collect_files


def _write(tmp_path, rel, code):
    p = tmp_path / rel
    p.parent.mkdir(parents=True, exist_ok=True)
    p.write_text(textwrap.dedent(code))
    return p


DIRTY = """
    import threading
    def f(target):
        threading.Thread(target=target).start()
"""

CLEAN = """
    import threading
    def f(target):
        threading.Thread(target=target, name="w", daemon=True).start()
"""


class TestCLI:
    def test_exit_one_and_human_output_on_findings(self, tmp_path, capsys):
        _write(tmp_path, "pkg/mod.py", DIRTY)
        assert main([str(tmp_path)]) == 1
        out = capsys.readouterr().out
        assert "RT002" in out and "mod.py:4" in out

    def test_exit_zero_on_clean_tree(self, tmp_path, capsys):
        _write(tmp_path, "pkg/mod.py", CLEAN)
        assert main([str(tmp_path)]) == 0
        assert "0 finding" in capsys.readouterr().out

    def test_json_format_and_artifact(self, tmp_path, capsys):
        _write(tmp_path, "pkg/mod.py", DIRTY)
        artifact = tmp_path / "findings.json"
        assert main([str(tmp_path / "pkg"), "--format", "json", "--out", str(artifact)]) == 1
        doc = json.loads(capsys.readouterr().out)
        assert doc["tool"] == "repro.analysis"
        assert doc["total"] == 1 and doc["counts"] == {"RT002": 1}
        assert doc["findings"][0]["rule"] == "RT002"
        assert json.loads(artifact.read_text()) == doc

    def test_single_file_argument(self, tmp_path):
        p = _write(tmp_path, "one.py", DIRTY)
        assert main([str(p)]) == 1

    def test_syntax_error_is_a_finding_not_a_crash(self, tmp_path, capsys):
        _write(tmp_path, "broken.py", "def f(:\n")
        assert main([str(tmp_path)]) == 1
        assert "PARSE" in capsys.readouterr().out

    def test_list_rules(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule in ("RT001", "RT002", "SIM001", "EXC001", "CNT001"):
            assert rule in out


class TestCollectFiles:
    def test_skips_caches_and_non_python(self, tmp_path):
        _write(tmp_path, "a.py", "x = 1\n")
        _write(tmp_path, "sub/b.py", "y = 2\n")
        _write(tmp_path, "__pycache__/c.py", "z = 3\n")
        (tmp_path / "notes.txt").write_text("not python")
        names = sorted(p.name for p in collect_files([str(tmp_path)]))
        assert names == ["a.py", "b.py"]
