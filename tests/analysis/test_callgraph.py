"""Call-graph construction and CFG shape tests — the substrate every
interprocedural rule stands on, tested directly so a rule regression can
be bisected to either extraction or analysis."""

from __future__ import annotations

import ast
import textwrap

from repro.analysis.callgraph import CallGraph
from repro.analysis.cfg import EXIT, RAISE, build_cfg
from repro.analysis.visitor import ModuleContext


def graph_of(modules: dict) -> CallGraph:
    ctxs = [ModuleContext.parse(p, textwrap.dedent(s)) for p, s in modules.items()]
    return CallGraph(ctxs)


def fn(graph: CallGraph, suffix: str):
    hits = [fi for q, fi in graph.functions.items() if q.endswith(suffix)]
    assert len(hits) == 1, f"{suffix!r} matched {len(hits)} functions"
    return hits[0]


def callee_names(graph: CallGraph, suffix: str) -> set:
    out = set()
    for site in graph.callees_of(fn(graph, suffix).qualname):
        out.update(site.callees)
    return out


class TestCallGraph:
    def test_module_functions_and_methods_indexed(self):
        g = graph_of(
            {
                "src/pkg/mod.py": """
                def top():
                    pass

                class C:
                    def m(self):
                        pass
                """
            }
        )
        assert any(q.endswith(":top") for q in g.functions)
        assert any(q.endswith(":C.m") for q in g.functions)

    def test_self_dispatch_resolves_to_own_method(self):
        g = graph_of(
            {
                "src/pkg/mod.py": """
                class C:
                    def a(self):
                        self.b()

                    def b(self):
                        pass
                """
            }
        )
        assert fn(g, ":C.b").qualname in callee_names(g, ":C.a")

    def test_cross_module_from_import_resolves(self):
        g = graph_of(
            {
                "src/pkg/util.py": """
                def helper():
                    pass
                """,
                "src/pkg/app.py": """
                from .util import helper

                def f():
                    helper()
                """,
            }
        )
        assert fn(g, "util:helper").qualname in callee_names(g, "app:f")

    def test_virtual_dispatch_includes_subclass_overrides(self):
        g = graph_of(
            {
                "src/pkg/mod.py": """
                class Base:
                    def run(self):
                        self.step()

                    def step(self):
                        pass

                class Sub(Base):
                    def step(self):
                        pass
                """
            }
        )
        callees = callee_names(g, ":Base.run")
        assert fn(g, ":Base.step").qualname in callees
        assert fn(g, ":Sub.step").qualname in callees

    def test_attribute_type_inferred_from_init(self):
        g = graph_of(
            {
                "src/pkg/mod.py": """
                class Worker:
                    def run(self):
                        pass

                class Owner:
                    def __init__(self):
                        self.worker = Worker()

                    def go(self):
                        self.worker.run()
                """
            }
        )
        assert fn(g, ":Worker.run").qualname in callee_names(g, ":Owner.go")

    def test_nested_def_bodies_are_not_caller_edges(self):
        # a closure body runs at *call* time, often on another thread —
        # its calls must not count as edges of the enclosing function
        g = graph_of(
            {
                "src/pkg/mod.py": """
                def helper():
                    pass

                def f():
                    def closure():
                        helper()
                    return closure
                """
            }
        )
        assert fn(g, ":helper").qualname not in callee_names(g, ":f")


def cfg_of(code: str):
    tree = ast.parse(textwrap.dedent(code))
    return build_cfg(tree.body[0])


def node_at(cfg, line: int, role: str = "stmt") -> int:
    hits = [
        nid for nid, n in cfg.nodes.items() if n.line == line and n.role == role
    ]
    assert len(hits) == 1, f"line {line} role {role!r} matched {hits}"
    return hits[0]


def reachable_from(cfg, start: int) -> set:
    seen, todo = set(), [start]
    while todo:
        nid = todo.pop()
        if nid in seen:
            continue
        seen.add(nid)
        todo.extend(cfg.successors(nid))
    return seen


class TestCFG:
    def test_call_statement_has_exception_edge_to_raise(self):
        cfg = cfg_of(
            """
            def f():
                g()
            """
        )
        nid = node_at(cfg, 3)
        assert RAISE in cfg.exc_succ.get(nid, set())
        assert EXIT in reachable_from(cfg, nid)

    def test_pass_has_no_exception_edge(self):
        cfg = cfg_of(
            """
            def f():
                pass
            """
        )
        nid = node_at(cfg, 3)
        assert not cfg.exc_succ.get(nid)

    def test_try_except_routes_exception_to_handler_not_raise(self):
        cfg = cfg_of(
            """
            def f():
                try:
                    risky()
                except ValueError:
                    fallback()
            """
        )
        nid = node_at(cfg, 4)
        exc = cfg.exc_succ.get(nid, set())
        assert RAISE not in exc
        handler = node_at(cfg, 6)
        assert any(handler in reachable_from(cfg, t) for t in exc)

    def test_try_finally_runs_finally_on_both_exits(self):
        cfg = cfg_of(
            """
            def f():
                try:
                    risky()
                finally:
                    cleanup()
            """
        )
        risky, cleanup = node_at(cfg, 4), node_at(cfg, 6)
        exc = cfg.exc_succ.get(risky, set())
        # the exceptional path flows through the finally body...
        assert any(cleanup in reachable_from(cfg, t) for t in exc)
        # ...which then exits both normally and exceptionally
        after_cleanup = reachable_from(cfg, cleanup)
        assert EXIT in after_cleanup and RAISE in after_cleanup
