"""Static lock-acquisition-order graph: extraction, LOCK001 cycle
detection, and the cross-check against the runtime witness report."""

from __future__ import annotations

import textwrap

from repro.analysis.callgraph import CallGraph
from repro.analysis.engine import run_lint
from repro.analysis.lockgraph import (
    build_static_lock_graph,
    compare_with_runtime,
    find_sccs,
)
from repro.analysis.visitor import ModuleContext

PATH = "src/repro/runtime/locks_snippet.py"


def graph_of(modules: dict) -> CallGraph:
    ctxs = [ModuleContext.parse(p, textwrap.dedent(s)) for p, s in modules.items()]
    return CallGraph(ctxs)


def lint_project(modules: dict):
    return run_lint([(p, textwrap.dedent(s)) for p, s in modules.items()]).findings


NESTED = """
    from repro.analysis.lockwitness import named_lock

    a_lock = named_lock("role-a")
    b_lock = named_lock("role-b")

    def f():
        with a_lock:
            with b_lock:
                pass
"""


class TestStaticGraph:
    def test_nested_with_produces_role_edge(self):
        static = build_static_lock_graph(graph_of({PATH: NESTED}))
        edges = {(e["from"], e["to"]) for e in static["edges"]}
        assert ("role-a", "role-b") in edges
        assert static["cycles"] == []
        assert set(static["roles"]) >= {"role-a", "role-b"}

    def test_edge_through_callee_recorded_with_via_chain(self):
        code = NESTED + """
    def grab_a():
        with a_lock:
            pass

    def g():
        with b_lock:
            grab_a()
"""
        static = build_static_lock_graph(graph_of({PATH: code}))
        rev = [e for e in static["edges"] if (e["from"], e["to"]) == ("role-b", "role-a")]
        assert rev and "a_lock" in rev[0]["via"]  # the witness acquisition site
        # both orders now exist: the cycle is visible statically
        assert ["role-a", "role-b"] in static["cycles"]

    def test_lock001_finding_names_cycle_and_sites(self):
        code = NESTED + """
    def grab_a():
        with a_lock:
            pass

    def g():
        with b_lock:
            grab_a()
"""
        findings = [f for f in lint_project({PATH: code}) if f.rule == "LOCK001"]
        assert findings, "static cycle must surface as LOCK001"
        msg = findings[0].message
        assert "role-a" in msg and "role-b" in msg

    def test_acyclic_tree_has_no_lock001(self):
        findings = [f for f in lint_project({PATH: NESTED}) if f.rule == "LOCK001"]
        assert findings == []


class TestSccs:
    def test_two_node_cycle_found(self):
        assert find_sccs({"x": {"y"}, "y": {"x"}}) == [["x", "y"]]

    def test_dag_has_none(self):
        assert find_sccs({"x": {"y"}, "y": set()}) == []


class TestRuntimeCrossCheck:
    def test_combined_only_cycle_detected(self):
        # each side alone is acyclic; the union deadlocks — the silent
        # gap the conftest session gate exists to close
        static = {"edges": [{"from": "x", "to": "y", "site": "s.py:1", "via": ""}]}
        runtime = {"edges": [{"from": "y", "to": "x", "thread": "t", "site": "r.py:2"}]}
        cmp = compare_with_runtime(static, runtime)
        assert cmp["static_cycles"] == [] and cmp["runtime_cycles"] == []
        assert cmp["combined_cycles"] == [["x", "y"]]

    def test_agreeing_graphs_have_no_combined_cycle(self):
        static = {"edges": [{"from": "x", "to": "y", "site": "s.py:1", "via": ""}]}
        runtime = {"edges": [{"from": "x", "to": "y", "thread": "t", "site": "r.py:2"}]}
        cmp = compare_with_runtime(static, runtime)
        assert cmp["combined_cycles"] == []
        assert cmp["static_only_edges"] == [] and cmp["runtime_only_edges"] == []

    def test_unnamed_static_roles_excluded(self):
        # '?name' roles are invisible to the runtime witness; they must
        # not manufacture cross-check cycles
        static = {
            "edges": [
                {"from": "?m", "to": "x", "site": "s.py:1", "via": ""},
                {"from": "x", "to": "?m", "site": "s.py:2", "via": ""},
            ]
        }
        cmp = compare_with_runtime(static, {"edges": []})
        assert cmp["static_cycles"] == [] and cmp["combined_cycles"] == []

    def test_real_tree_static_graph_matches_known_shape(self):
        # the shipped runtime has exactly one static ordering edge today:
        # the mover condition is held while server stats are bumped
        import pathlib

        from repro.analysis.engine import collect_files

        src = pathlib.Path(__file__).resolve().parents[2] / "src" / "repro" / "runtime"
        ctxs = [
            ModuleContext.parse(f.as_posix(), f.read_text())
            for f in collect_files([src])
        ]
        static = build_static_lock_graph(CallGraph(ctxs))
        assert static["cycles"] == []
        edges = {(e["from"], e["to"]) for e in static["edges"]}
        assert ("mover-cond", "server-stats") in edges
