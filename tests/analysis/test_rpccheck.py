"""RPC000–RPC004 fixtures: drifted client/server pairs for every rule,
plus the gating that keeps single-sided lint runs quiet.

The acceptance case for RPC004 is the one the rule exists for: remove a
field from *one* server reply path and the finding names the op, the
field, the consumption site, and the deficient reply location."""

from __future__ import annotations

import textwrap

from repro.analysis.engine import run_lint

SERVER = "src/repro/runtime/server_snippet.py"
CLIENT = "src/repro/runtime/client_snippet.py"
HVAC = "src/repro/hvac/snippet.py"


def lint_project(modules: dict):
    return run_lint([(p, textwrap.dedent(s)) for p, s in modules.items()]).findings


def only(findings, rule: str):
    hits = [f for f in findings if f.rule == rule]
    assert len(hits) == 1, [f.format_human() for f in findings]
    return hits[0]


def rules_of(findings) -> list:
    return [f.rule for f in findings]


#: a conforming pair — the baseline every drift below is one edit away from
SERVER_OK = """
    OP_READ = "READ"
    OP_STAT = "STAT"

    class Server:
        def dispatch(self, msg):
            if msg.op == OP_READ:
                path = msg.header.get("path", "")
                if not path:
                    return Message.error_response(reason="empty path")
                return Message.ok_response(source="cache", checksum="abc")
            if msg.op == OP_STAT:
                return Message.ok_response(entries=12)
            return Message.error_response(reason="unknown op")
"""

CLIENT_OK = """
    OP_READ = "READ"
    OP_STAT = "STAT"

    class Client:
        def read(self, path):
            resp = self._rpc(Message.request(OP_READ, path=path))
            return resp.header["checksum"]

        def stat(self):
            resp = self._rpc(Message.request(OP_STAT))
            return resp.header.get("entries", 0)
"""


class TestConformingPairIsClean:
    def test_baseline_pair_clean(self):
        assert lint_project({SERVER: SERVER_OK, CLIENT: CLIENT_OK}) == []


class TestRPC001SentNeverHandled:
    def test_client_only_op_flagged(self):
        client = CLIENT_OK + """
    OP_PURGE = "PURGE"

    class Admin:
        def purge(self):
            return self._rpc(Message.request(OP_PURGE))
"""
        f = only(lint_project({SERVER: SERVER_OK, CLIENT: client}), "RPC001")
        assert "OP_PURGE" in f.message and f.path == CLIENT

    def test_lone_client_module_not_flagged(self):
        # without any handler in the linted set there is no server side
        # to conform to — gating keeps partial lint runs quiet
        assert lint_project({CLIENT: CLIENT_OK}) == []


class TestRPC002HandledNeverSent:
    def test_server_only_branch_flagged(self):
        client = """
    OP_READ = "READ"

    class Client:
        def read(self, path):
            resp = self._rpc(Message.request(OP_READ, path=path))
            return resp.header["checksum"]
"""
        findings = lint_project({SERVER: SERVER_OK, CLIENT: client})
        f = only(findings, "RPC002")
        assert "OP_STAT" in f.message and f.path == SERVER


class TestRPC003RequestFieldNotSupplied:
    def test_read_field_no_sender_supplies_flagged(self):
        client = CLIENT_OK.replace(
            "Message.request(OP_READ, path=path)", "Message.request(OP_READ)"
        )
        f = only(lint_project({SERVER: SERVER_OK, CLIENT: client}), "RPC003")
        assert "'path'" in f.message and f.path == SERVER
        assert CLIENT in f.message  # the senders are named

    def test_wildcard_sender_satisfies(self):
        client = CLIENT_OK.replace(
            "Message.request(OP_READ, path=path)",
            "Message.request(OP_READ, **fields)",
        )
        assert lint_project({SERVER: SERVER_OK, CLIENT: client}) == []


class TestRPC004ResponseFieldDrift:
    def test_removing_field_from_one_reply_path_caught(self):
        # the acceptance drift: 'checksum' disappears from the cache-hit
        # reply only; the client's strict read still demands it everywhere
        server = SERVER_OK.replace(
            'return Message.ok_response(source="cache", checksum="abc")',
            'return Message.ok_response(source="cache")',
        )
        findings = lint_project({SERVER: server, CLIENT: CLIENT_OK})
        f = only(findings, "RPC004")
        assert "'checksum'" in f.message and "'READ'" in f.message
        assert f.path == CLIENT  # anchored at the consumption site
        assert SERVER in f.message  # ...and names the deficient reply path

    def test_soft_read_tolerates_partial_reply_paths(self):
        # .get() consumption only requires *some* reply path to set it —
        # here a second ok path without 'checksum' stays acceptable
        server = SERVER_OK.replace(
            'return Message.error_response(reason="empty path")',
            'return Message.ok_response(source="none")',
        )
        client = CLIENT_OK.replace(
            'resp.header["checksum"]', 'resp.header.get("checksum")'
        )
        assert lint_project({SERVER: server, CLIENT: client}) == []

    def test_field_set_nowhere_flagged_even_for_soft_read(self):
        client = CLIENT_OK.replace(
            'resp.header["checksum"]', 'resp.header.get("sha256")'
        )
        f = only(lint_project({SERVER: SERVER_OK, CLIENT: client}), "RPC004")
        assert "'sha256'" in f.message and "no server reply path" in f.message

    def test_dict_header_wildcard_consumption_asserts_nothing(self):
        client = CLIENT_OK.replace(
            'resp.header["checksum"]', "dict(resp.header)"
        )
        server = SERVER_OK.replace(', checksum="abc"', "")
        assert lint_project({SERVER: server, CLIENT: client}) == []


class TestRPC000OpLiteralDrift:
    def test_string_literal_op_flagged_with_constant_hint(self):
        client = CLIENT_OK.replace(
            "Message.request(OP_READ, path=path)",
            'Message.request("READ", path=path)',
        )
        f = only(lint_project({SERVER: SERVER_OK, CLIENT: client}), "RPC000")
        assert "OP_READ" in f.message  # hints at the existing constant

    def test_unknown_op_constant_flagged(self):
        client = CLIENT_OK + """
    class Admin:
        def purge(self):
            return self._rpc(Message.request(OP_PURGE))
"""
        findings = lint_project({SERVER: SERVER_OK, CLIENT: client})
        assert "RPC000" in rules_of(findings)
        f = only(findings, "RPC000")
        assert "OP_PURGE" in f.message


PROTO = "src/repro/runtime/protocol_snippet.py"

#: a well-formed binary op table matching the conforming pair above
PROTO_OK = """
    OP_READ = "READ"
    OP_STAT = "STAT"

    BIN_OPS = {
        OP_READ: 1,
        OP_STAT: 2,
    }
"""


class TestBinaryOpTable:
    def test_clean_table_baseline(self):
        assert lint_project({PROTO: PROTO_OK, SERVER: SERVER_OK, CLIENT: CLIENT_OK}) == []

    def test_table_entry_without_handler_or_sender(self):
        # a table entry is a wire capability: decodable but unservable is
        # RPC001, decodable but never produced is RPC002 — both anchored
        # at the table entry, not at some unrelated dispatch line
        proto = PROTO_OK.replace(
            "OP_STAT: 2,", "OP_STAT: 2,\n        OP_PURGE: 3,"
        ).replace('OP_STAT = "STAT"', 'OP_STAT = "STAT"\n    OP_PURGE = "PURGE"')
        findings = lint_project({PROTO: proto, SERVER: SERVER_OK, CLIENT: CLIENT_OK})
        f1 = only(findings, "RPC001")
        f2 = only(findings, "RPC002")
        assert "'PURGE'" in f1.message and f1.path == PROTO
        assert "'PURGE'" in f2.message and f2.path == PROTO

    def test_duplicate_wire_code_flagged(self):
        proto = PROTO_OK.replace("OP_STAT: 2,", "OP_STAT: 1,")
        f = only(
            lint_project({PROTO: proto, SERVER: SERVER_OK, CLIENT: CLIENT_OK}), "RPC000"
        )
        assert "cannot tell the two ops apart" in f.message and f.path == PROTO

    def test_non_integer_wire_code_flagged(self):
        proto = PROTO_OK.replace("OP_STAT: 2,", 'OP_STAT: "2",')
        f = only(
            lint_project({PROTO: proto, SERVER: SERVER_OK, CLIENT: CLIENT_OK}), "RPC000"
        )
        assert "non-integer wire code" in f.message

    def test_out_of_range_wire_code_flagged(self):
        proto = PROTO_OK.replace("OP_STAT: 2,", "OP_STAT: 300,")
        f = only(
            lint_project({PROTO: proto, SERVER: SERVER_OK, CLIENT: CLIENT_OK}), "RPC000"
        )
        assert "8-bit op field" in f.message

    def test_string_literal_table_key_flagged(self):
        proto = PROTO_OK.replace("OP_READ: 1,", '"READ": 1,')
        findings = lint_project({PROTO: proto, SERVER: SERVER_OK, CLIENT: CLIENT_OK})
        f = only(findings, "RPC000")
        assert "OP_READ" in f.message  # hints at the existing constant


class TestHvacDataclassConformance:
    CLEAN = """
        from dataclasses import dataclass

        @dataclass(frozen=True)
        class ReadRequest:
            files: tuple

        @dataclass(frozen=True)
        class ReadResponse:
            served_bytes: int
            hit_files: int

        def fetch(rpc, files):
            request = ReadRequest(files=tuple(files))
            result = rpc.call(request)
            served = result.value
            return served.served_bytes + served.hit_files
    """

    def test_clean_pair(self):
        assert lint_project({HVAC: self.CLEAN}) == []

    def test_reading_missing_response_field_flagged(self):
        code = self.CLEAN.replace("served.hit_files", "served.miss_files")
        f = only(lint_project({HVAC: code}), "RPC004")
        assert "miss_files" in f.message and "ReadResponse" in f.message

    def test_constructing_request_with_unknown_field_flagged(self):
        code = self.CLEAN.replace(
            "ReadRequest(files=tuple(files))",
            "ReadRequest(files=tuple(files), shard=3)",
        )
        f = only(lint_project({HVAC: code}), "RPC003")
        assert "'shard'" in f.message and "ReadRequest" in f.message
