"""Tests for SLURM-like drain and job time limits."""

import pytest

from repro.cluster import Cluster, JobTimeLimitExceeded, SlurmController


@pytest.fixture
def cluster():
    return Cluster.frontier(n_nodes=8, seed=3)


@pytest.fixture
def slurm(cluster):
    return SlurmController(cluster)


class TestDrain:
    def test_drain_kills_node(self, cluster, slurm):
        slurm.drain(3)
        assert not cluster.node(3).alive
        assert slurm.drained == [(0.0, 3)]

    def test_drain_at_scheduled_time(self, cluster, slurm):
        slurm.drain_at(5, when=7.5)
        cluster.env.run()
        assert cluster.node(5).failed_at == 7.5

    def test_drain_at_past_time_fires_immediately(self, cluster, slurm):
        cluster.env.run(until=4.0)
        slurm.drain_at(1, when=2.0)
        cluster.env.run()
        assert cluster.node(1).failed_at == pytest.approx(4.0)


class TestTimeLimit:
    def test_job_within_limit_returns_value(self, cluster, slurm):
        env = cluster.env

        def job():
            yield env.timeout(5)
            return "finished"

        sup = slurm.enforce_limit(env.process(job()), limit=10.0)
        env.run()
        assert sup.value == "finished"

    def test_job_over_limit_killed(self, cluster, slurm):
        env = cluster.env

        def job():
            yield env.timeout(100)
            return "never"

        sup = slurm.enforce_limit(env.process(job()), limit=10.0)

        def waiter():
            try:
                yield sup
            except JobTimeLimitExceeded as exc:
                return ("killed", exc.limit, env.now)

        w = env.process(waiter())
        env.run()
        assert w.value == ("killed", 10.0, 10.0)

    def test_grace_period(self, cluster, slurm):
        env = cluster.env

        def job():
            yield env.timeout(11)
            return "made it"

        sup = slurm.enforce_limit(env.process(job()), limit=10.0, grace=2.0)
        env.run()
        assert sup.value == "made it"

    def test_invalid_limit(self, cluster, slurm):
        env = cluster.env

        def job():
            yield env.timeout(1)

        with pytest.raises(ValueError):
            slurm.enforce_limit(env.process(job()), limit=0)


class TestRandomDrainTimes:
    def test_count_and_window(self, slurm):
        plan = slurm.random_drain_times(3, window_start=10.0, window_end=50.0)
        assert len(plan) == 3
        times = [t for t, _ in plan]
        assert times == sorted(times)
        assert all(10.0 <= t <= 50.0 for t in times)

    def test_victims_distinct_and_alive(self, cluster, slurm):
        cluster.fail_node(0)
        plan = slurm.random_drain_times(5, 0.0, 10.0)
        victims = [v for _, v in plan]
        assert len(set(victims)) == 5
        assert 0 not in victims

    def test_exclusion(self, slurm):
        plan = slurm.random_drain_times(3, 0.0, 1.0, exclude={1, 2, 3, 4})
        assert all(v not in {1, 2, 3, 4} for _, v in plan)

    def test_too_many_failures_rejected(self, slurm):
        with pytest.raises(ValueError):
            slurm.random_drain_times(9, 0.0, 1.0)

    def test_bad_window_rejected(self, slurm):
        with pytest.raises(ValueError):
            slurm.random_drain_times(1, 5.0, 5.0)

    def test_reproducible_per_seed(self):
        a = SlurmController(Cluster.frontier(8, seed=11)).random_drain_times(3, 0, 10)
        b = SlurmController(Cluster.frontier(8, seed=11)).random_drain_times(3, 0, 10)
        assert a == b
