"""Tests for the PFS interference substrate and its ablation."""

import pytest

from repro.cluster import BackgroundLoad, Cluster, PFSConfig, with_interference
from repro.experiments import ExperimentScale, format_interference_ablation, run_interference_ablation


class TestWithInterference:
    def test_level_zero_is_identity(self):
        cfg = PFSConfig()
        assert with_interference(cfg, 0.0) is cfg

    def test_degradation_directions(self):
        base = PFSConfig()
        loaded = with_interference(base, 1.0)
        assert loaded.aggregate_bw < base.aggregate_bw
        assert loaded.per_stream_bw < base.per_stream_bw
        assert loaded.random_read_latency > base.random_read_latency
        assert loaded.service_noise_sigma > base.service_noise_sigma

    def test_monotone_in_level(self):
        base = PFSConfig()
        a = with_interference(base, 0.5)
        b = with_interference(base, 2.0)
        assert b.aggregate_bw < a.aggregate_bw
        assert b.random_read_latency > a.random_read_latency

    def test_negative_level_rejected(self):
        with pytest.raises(ValueError):
            with_interference(PFSConfig(), -0.1)


class TestBackgroundLoad:
    def test_validation(self):
        cluster = Cluster.frontier(n_nodes=2, seed=1)
        with pytest.raises(ValueError):
            BackgroundLoad(cluster.env, cluster.pfs, offered_ratio=-1)
        with pytest.raises(ValueError):
            BackgroundLoad(cluster.env, cluster.pfs, mean_burst_bytes=0)

    def test_zero_load_starts_nothing(self):
        cluster = Cluster.frontier(n_nodes=2, seed=1)
        bg = BackgroundLoad(cluster.env, cluster.pfs, offered_ratio=0.0)
        assert bg.start() is None

    def test_offered_load_approximately_met(self):
        cluster = Cluster.frontier(n_nodes=2, seed=1)
        bg = BackgroundLoad(
            cluster.env, cluster.pfs, offered_ratio=0.5, mean_burst_bytes=16e6
        )
        bg.start()
        cluster.env.run(until=30.0)
        offered_rate = bg.bytes_offered / 30.0
        target = 0.5 * cluster.pfs.config.aggregate_bw
        assert offered_rate == pytest.approx(target, rel=0.4)
        assert bg.bursts > 10

    def test_contention_slows_foreground_reads(self):
        def read_time(ratio):
            cluster = Cluster.frontier(n_nodes=2, seed=1)
            bg = BackgroundLoad(
                cluster.env, cluster.pfs, offered_ratio=ratio, max_concurrent_bursts=32
            )
            bg.start()
            env = cluster.env

            def fg():
                yield env.timeout(2.0)  # let background traffic build up
                t0 = env.now
                yield from cluster.pfs.read(256e6, n_files=4)
                return env.now - t0

            p = env.process(fg())
            env.run(until=p)
            return p.value

        assert read_time(0.8) > read_time(0.0)

    def test_double_start_rejected(self):
        cluster = Cluster.frontier(n_nodes=2, seed=1)
        bg = BackgroundLoad(cluster.env, cluster.pfs, offered_ratio=0.5)
        bg.start()
        with pytest.raises(RuntimeError):
            bg.start()


class TestInterferenceAblation:
    def test_gap_widens_with_load(self):
        r = run_interference_ablation(scale=ExperimentScale.smoke(), levels=(0.0, 2.0))
        by_node: dict = {}
        for row in r.rows:
            by_node.setdefault(row.n_nodes, {})[row.level] = row
        for rows in by_node.values():
            assert rows[2.0].gap_pct > rows[0.0].gap_pct

    def test_baseline_slows_with_load(self):
        r = run_interference_ablation(scale=ExperimentScale.smoke(), levels=(0.0, 1.0))
        by_node: dict = {}
        for row in r.rows:
            by_node.setdefault(row.n_nodes, {})[row.level] = row
        for rows in by_node.values():
            assert rows[1.0].nofail > rows[0.0].nofail

    def test_format(self):
        text = format_interference_ablation(
            run_interference_ablation(scale=ExperimentScale.smoke(), levels=(0.0, 1.0))
        )
        assert "Interference" in text and "Bg load" in text
