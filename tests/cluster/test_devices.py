"""Tests for NVMe, network, and PFS device models."""

import pytest
from dataclasses import replace

from repro.cluster import (
    Cluster,
    GiB,
    MiB,
    Network,
    NetworkConfig,
    NVMeConfig,
    NVMeDevice,
    NVMeFullError,
    ParallelFileSystem,
    PFSConfig,
    frontier,
)
from repro.sim import AllOf, Environment
from tests.conftest import run_proc


@pytest.fixture
def nvme(env):
    return NVMeDevice(env, NVMeConfig(capacity=1000.0, read_bw=100.0, write_bw=50.0, per_op_latency=0.01))


class TestNVMe:
    def test_read_time_exact(self, env, nvme):
        def proc():
            yield from nvme.read(200.0)
            return env.now

        assert run_proc(env, proc()) == pytest.approx(0.01 + 2.0)

    def test_write_reserves_capacity(self, env, nvme):
        def proc():
            yield from nvme.write(300.0)
            return nvme.used_bytes

        assert run_proc(env, proc()) == 300.0
        assert nvme.free_bytes == 700.0

    def test_capacity_enforced(self, nvme):
        nvme.reserve(900.0)
        with pytest.raises(NVMeFullError):
            nvme.reserve(200.0)

    def test_release(self, nvme):
        nvme.reserve(500.0)
        nvme.release(200.0)
        assert nvme.used_bytes == 300.0
        nvme.release(1e9)  # over-release clamps to zero
        assert nvme.used_bytes == 0.0

    def test_concurrent_reads_share_bandwidth(self, env, nvme):
        def one():
            yield from nvme.read(100.0)

        def proc():
            a = env.process(one())
            b = env.process(one())
            yield AllOf(env, [a, b])
            return env.now

        # 200 bytes at 100 B/s aggregate → 2 s + op latency.
        assert run_proc(env, proc()) == pytest.approx(0.01 + 2.0)

    def test_byte_counters(self, env, nvme):
        def proc():
            yield from nvme.read(100.0)
            yield from nvme.write(40.0)

        run_proc(env, proc())
        assert nvme.bytes_read == pytest.approx(100.0)
        assert nvme.bytes_written == pytest.approx(40.0)

    def test_frontier_defaults_match_table2(self):
        cfg = NVMeConfig()
        assert cfg.read_bw == 8 * GiB
        assert cfg.write_bw == 4 * GiB
        assert cfg.capacity == pytest.approx(3.5 * 1024**4)


class TestNetwork:
    @pytest.fixture
    def net(self, env):
        return Network(env, NetworkConfig(link_bw=100.0, base_latency=0.5, rpc_overhead=0.0), n_nodes=4)

    def test_send_time(self, env, net):
        def proc():
            yield from net.send(0, 1, 200.0)
            return env.now

        assert run_proc(env, proc()) == pytest.approx(0.5 + 2.0)

    def test_loopback_is_latency_only(self, env, net):
        def proc():
            yield from net.send(2, 2, 1e9)
            return env.now

        assert run_proc(env, proc()) == pytest.approx(0.5)

    def test_incast_shares_receiver_link(self, env, net):
        done = {}

        def sender(src):
            yield from net.send(src, 3, 100.0)
            done[src] = env.now

        for src in (0, 1, 2):
            env.process(sender(src))
        env.run()
        # 300 bytes into one 100 B/s ingress → all finish at 0.5 + 3.0.
        assert all(t == pytest.approx(3.5) for t in done.values())

    def test_invalid_node_id(self, net):
        with pytest.raises(ValueError):
            list(net.send(0, 9, 10.0))
        with pytest.raises(ValueError):
            list(net.send(-1, 0, 10.0))

    def test_counters(self, env, net):
        def proc():
            yield from net.send(0, 1, 64.0)

        run_proc(env, proc())
        assert net.messages_sent == 1 and net.bytes_sent == 64.0


class TestPFS:
    def _pfs(self, env, **over):
        cfg = PFSConfig(
            aggregate_bw=1000.0,
            per_stream_bw=100.0,
            metadata_concurrency=2,
            metadata_service_time=0.1,
            access_latency=0.0,
            random_read_latency=0.0,
            service_noise_sigma=0.0,
        )
        cfg = replace(cfg, **over)
        return ParallelFileSystem(env, cfg)

    def test_read_time_single(self, env):
        pfs = self._pfs(env)

        def proc():
            yield from pfs.read(200.0, n_files=1)
            return env.now

        # metadata 0.1 + 200/100 per-stream = 2.1
        assert run_proc(env, proc()) == pytest.approx(2.1)

    def test_metadata_contention_queues(self, env):
        pfs = self._pfs(env)
        done = {}

        def reader(tag):
            yield from pfs.read(0.0, n_files=1)
            done[tag] = env.now

        for i in range(4):
            env.process(reader(i))
        env.run()
        # 4 metadata ops, 2 concurrent at 0.1s: waves at 0.1 and 0.2.
        assert sorted(done.values()) == pytest.approx([0.1, 0.1, 0.2, 0.2])

    def test_aggregate_bandwidth_cap(self, env):
        pfs = self._pfs(env, metadata_concurrency=64)
        done = {}

        def reader(tag):
            yield from pfs.read(100.0, n_files=1)
            done[tag] = env.now

        for i in range(20):
            env.process(reader(i))
        env.run()
        # 20 streams want 100 B/s each = 2000 > 1000 aggregate → 2000 bytes
        # at 1000 B/s = 2.0 s (+0.1 metadata wave).
        assert max(done.values()) == pytest.approx(2.1, abs=0.05)

    def test_amplification_scales_latency(self, env):
        pfs = self._pfs(env, random_read_latency=0.05)
        t = {}

        def reader(amp, tag):
            yield from pfs.read(0.0, n_files=2, amplification=amp)
            t[tag] = env.now

        env.process(reader(1.0, "plain"))
        env.run()
        env2 = Environment()
        pfs2 = self._pfs(env2, random_read_latency=0.05)

        def reader2():
            yield from pfs2.read(0.0, n_files=2, amplification=6.0)
            return env2.now

        t_amp = run_proc(env2, reader2())
        assert t_amp - t["plain"] == pytest.approx(2 * 0.05 * 5.0)

    def test_validation(self, env):
        pfs = self._pfs(env)
        with pytest.raises(ValueError):
            list(pfs.read(-1.0))
        with pytest.raises(ValueError):
            list(pfs.read(1.0, n_files=0))
        with pytest.raises(ValueError):
            list(pfs.read(1.0, amplification=0.5))

    def test_stats(self, env):
        pfs = self._pfs(env)

        def proc():
            yield from pfs.read(50.0, n_files=2)

        run_proc(env, proc())
        assert pfs.stats.reads == 1
        assert pfs.stats.bytes_read == 50.0
        assert pfs.stats.metadata_ops == 2
        assert pfs.stats.mean_read_time > 0

    def test_noise_reproducible_with_seeded_cluster(self):
        def total(seed):
            cluster = Cluster.frontier(n_nodes=2, seed=seed)

            def proc():
                yield from cluster.pfs.read(1 * MiB, n_files=4)
                return cluster.env.now

            p = cluster.env.process(proc())
            cluster.env.run(until=p)
            return p.value

        assert total(9) == total(9)
        assert total(9) != total(10)


class TestClusterAssembly:
    def test_frontier_builder(self):
        cluster = Cluster.frontier(n_nodes=4, seed=1)
        assert cluster.n_nodes == 4
        assert cluster.alive_nodes == [0, 1, 2, 3]

    def test_fail_node(self):
        cluster = Cluster.frontier(n_nodes=4)
        cluster.fail_node(2)
        assert cluster.failed_nodes == [2]
        assert not cluster.node(2).alive
        cluster.fail_node(2)  # idempotent
        assert cluster.failed_nodes == [2]

    def test_failed_event_fires(self):
        cluster = Cluster.frontier(n_nodes=2)
        env = cluster.env

        def watcher():
            node_id = yield cluster.node(1).failed_event
            return (node_id, env.now)

        def killer():
            yield env.timeout(3.0)
            cluster.fail_node(1)

        w = env.process(watcher())
        env.process(killer())
        env.run()
        assert w.value == (1, 3.0)

    def test_failed_event_after_the_fact(self):
        cluster = Cluster.frontier(n_nodes=2)
        cluster.fail_node(0)
        evt = cluster.node(0).failed_event
        assert evt.triggered

    def test_with_nodes_scaling(self):
        cfg = frontier(64).with_nodes(128)
        assert cfg.n_nodes == 128
        assert cfg.nvme == frontier(64).nvme

    def test_invalid_node_count(self):
        with pytest.raises(ValueError):
            frontier(0)
