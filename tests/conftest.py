"""Shared test fixtures and helpers."""

from __future__ import annotations

import sys
import threading
import time

import numpy as np
import pytest

from repro.sim import Environment

#: thread-name prefixes owned by the runtime; anything still alive after the
#: suite means a handler/mover/chaos thread leaked past its owner's close()
_RUNTIME_THREAD_PREFIXES = (
    "ftcache-server-",
    "data-mover-",
    "replica-push",
    "loadgen-chaos",
    "chaos-monkey",
)


def _leaked_runtime_threads() -> list[threading.Thread]:
    return [
        t
        for t in threading.enumerate()
        if t.is_alive() and any(t.name.startswith(p) for p in _RUNTIME_THREAD_PREFIXES)
    ]


def pytest_sessionfinish(session, exitstatus):  # noqa: D103 - pytest hook
    # Post-suite leaked-thread assertion: a hung handler or mover thread
    # should fail the build, not wedge it until the CI job timeout.
    deadline = time.monotonic() + 5.0
    leaked = _leaked_runtime_threads()
    while leaked and time.monotonic() < deadline:
        time.sleep(0.1)
        leaked = _leaked_runtime_threads()
    if leaked and exitstatus == 0:
        names = ", ".join(sorted(t.name for t in leaked))
        print(
            f"\nERROR: {len(leaked)} runtime thread(s) leaked past the test "
            f"suite: {names}",
            file=sys.stderr,
        )
        session.exitstatus = 1


@pytest.fixture
def env() -> Environment:
    return Environment()


def run_proc(env: Environment, generator):
    """Run a single process to completion and return its value."""
    proc = env.process(generator)
    env.run(until=proc)
    return proc.value


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)
