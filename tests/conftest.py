"""Shared test fixtures and helpers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.sim import Environment


@pytest.fixture
def env() -> Environment:
    return Environment()


def run_proc(env: Environment, generator):
    """Run a single process to completion and return its value."""
    proc = env.process(generator)
    env.run(until=proc)
    return proc.value


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)
