"""Shared test fixtures and suite-wide concurrency gates.

Two post-suite assertions protect the threaded runtime:

* **leaked-thread gate** — any runtime-owned thread still alive after the
  suite fails the build, reported with its *name and creation site* (we
  record the spawning ``file:line`` by wrapping ``threading.Thread.__init__``
  for the session) so the failure is actionable, not a bare count;
* **lock-order witness** — :mod:`repro.analysis.lockwitness` is enabled
  for the whole session (opt out with ``FTLINT_LOCKWITNESS=0``), so every
  named runtime lock feeds the lock-acquisition graph; a cycle (potential
  deadlock), an over-budget hold (``FTLINT_LOCK_BUDGET`` seconds, default
  2.0), or a same-instance re-entry fails the run even when the schedule
  that would deadlock never fired.
"""

from __future__ import annotations

import os
import sys
import threading
import time

import numpy as np
import pytest

from repro.analysis import lockwitness
from repro.sim import Environment

#: thread-name prefixes owned by the runtime; anything still alive after the
#: suite means a handler/mover/chaos thread leaked past its owner's close()
_RUNTIME_THREAD_PREFIXES = (
    "ftcache-server-",
    "data-mover-",
    "replica-push",
    "loadgen-chaos",
    "chaos-monkey",
)

_LOCKWITNESS_ON = os.environ.get("FTLINT_LOCKWITNESS", "1") != "0"

_original_thread_init = threading.Thread.__init__


def _recording_thread_init(self, *args, **kwargs):
    """Stamp every Thread with the file:line that constructed it, so the
    leaked-thread gate can say *who* leaked, not just how many."""
    _original_thread_init(self, *args, **kwargs)
    frame = sys._getframe(1)
    # Skip frames inside threading.py itself (e.g. Timer subclass __init__).
    while frame is not None and frame.f_code.co_filename == threading.__file__:
        frame = frame.f_back
    if frame is not None:
        self._ftlint_created_at = f"{frame.f_code.co_filename}:{frame.f_lineno}"


def pytest_configure(config):  # noqa: D103 - pytest hook
    threading.Thread.__init__ = _recording_thread_init
    if _LOCKWITNESS_ON:
        lockwitness.enable(hold_budget=float(os.environ.get("FTLINT_LOCK_BUDGET", "2.0")))


def pytest_unconfigure(config):  # noqa: D103 - pytest hook
    threading.Thread.__init__ = _original_thread_init
    lockwitness.disable()


def _leaked_runtime_threads() -> list[threading.Thread]:
    return [
        t
        for t in threading.enumerate()
        if t.is_alive() and any(t.name.startswith(p) for p in _RUNTIME_THREAD_PREFIXES)
    ]


def _describe(thread: threading.Thread) -> str:
    site = getattr(thread, "_ftlint_created_at", "<creation site unknown>")
    return f"  {thread.name}  (created at {site})"


def _combined_lock_cycles(runtime_report: dict) -> list:
    """Cycles present only in the union of the static lock graph (over
    ``src/repro``) and the session's runtime witness graph."""
    from pathlib import Path

    from repro.analysis.callgraph import CallGraph
    from repro.analysis.engine import collect_files
    from repro.analysis.lockgraph import build_static_lock_graph, compare_with_runtime
    from repro.analysis.visitor import ModuleContext

    src = Path(__file__).resolve().parent.parent / "src" / "repro"
    contexts = []
    for f in collect_files([src]):
        try:
            contexts.append(ModuleContext.parse(f.as_posix(), f.read_text()))
        except SyntaxError:
            continue  # the linter reports the parse error; not this gate's job
    static = build_static_lock_graph(CallGraph(contexts))
    return compare_with_runtime(static, runtime_report)["combined_cycles"]


def pytest_sessionfinish(session, exitstatus):  # noqa: D103 - pytest hook
    # Post-suite leaked-thread assertion: a hung handler or mover thread
    # should fail the build, not wedge it until the CI job timeout.
    deadline = time.monotonic() + 5.0
    leaked = _leaked_runtime_threads()
    while leaked and time.monotonic() < deadline:
        time.sleep(0.1)
        leaked = _leaked_runtime_threads()
    if leaked and exitstatus == 0:
        lines = "\n".join(_describe(t) for t in sorted(leaked, key=lambda t: t.name))
        print(
            f"\nERROR: {len(leaked)} runtime thread(s) leaked past the test suite:\n{lines}",
            file=sys.stderr,
        )
        session.exitstatus = 1

    # Lock-order witness verdict for the whole session.
    if _LOCKWITNESS_ON and exitstatus == 0:
        rep = lockwitness.report()
        if rep["cycles"] or rep["hold_violations"] or rep["reentries"]:
            try:
                lockwitness.assert_clean()
            except lockwitness.LockOrderViolation as exc:
                print(f"\nERROR: lock-order witness failed:\n{exc}", file=sys.stderr)
            session.exitstatus = 1
        else:
            # Cross-check against the *static* lock-acquisition graph:
            # each side alone can be acyclic while their union holds a
            # cycle — an ordering the tests never exercised overlapping
            # one the linter cannot see (locks local to closures).  That
            # silent gap is exactly what this gate exists to close.
            try:
                combined = _combined_lock_cycles(rep)
            except Exception as exc:  # the gate must never wedge the suite
                print(
                    f"\nWARNING: static/runtime lock-graph cross-check skipped: {exc}",
                    file=sys.stderr,
                )
            else:
                if combined:
                    print(
                        "\nERROR: lock-order cycle visible only in the combined "
                        f"static+runtime acquisition graph: {combined}",
                        file=sys.stderr,
                    )
                    session.exitstatus = 1


@pytest.fixture
def env() -> Environment:
    return Environment()


def run_proc(env: Environment, generator):
    """Run a single process to completion and return its value."""
    proc = env.process(generator)
    env.run(until=proc)
    return proc.value


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)
